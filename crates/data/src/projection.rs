//! Multi-level views of a transaction database through a taxonomy.
//!
//! An `(h, k)`-itemset is evaluated against the database in which every item
//! has been replaced by its level-`h` generalization (paper §2.2, Fig. 4).
//! [`MultiLevelView`] materializes that projection once per level, together
//! with per-item supports and tid-lists, so the miner can evaluate any cell
//! of the search table without touching the raw data again.

use crate::transaction::TransactionDb;
use flipper_taxonomy::{NodeId, Taxonomy};

/// The projection of a database to one abstraction level.
#[derive(Debug, Clone)]
pub struct LevelView {
    /// The abstraction level (1 = most general, `H` = leaves).
    pub level: usize,
    /// Projected transactions: items replaced by level-`level` ancestors,
    /// re-sorted and deduplicated (generalization can merge siblings).
    txns: Vec<Vec<NodeId>>,
    /// Support of each node present at this level (indexed by node id;
    /// absent nodes have support 0).
    item_support: Vec<u64>,
    /// Sorted transaction-id list per node id (empty for absent nodes).
    tidsets: Vec<Vec<u32>>,
    /// Nodes with non-zero support at this level, ascending by id.
    present: Vec<NodeId>,
}

impl LevelView {
    /// Projected transactions at this level.
    pub fn transactions(&self) -> impl Iterator<Item = &[NodeId]> {
        self.txns.iter().map(Vec::as_slice)
    }

    /// Projected transaction by index.
    #[inline]
    pub fn transaction(&self, idx: usize) -> &[NodeId] {
        &self.txns[idx]
    }

    /// Number of transactions (same at every level).
    #[inline]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the view holds no transactions (never true for views built
    /// from a valid database).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Support of a single node at this level.
    #[inline]
    pub fn item_support(&self, item: NodeId) -> u64 {
        self.item_support.get(item.index()).copied().unwrap_or(0)
    }

    /// Sorted tid-list of a node (empty slice if absent).
    #[inline]
    pub fn tidset(&self, item: NodeId) -> &[u32] {
        self.tidsets
            .get(item.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Nodes with non-zero support at this level, ascending by id.
    #[inline]
    pub fn present_items(&self) -> &[NodeId] {
        &self.present
    }
}

/// Projections of one database to every level of a taxonomy.
#[derive(Debug, Clone)]
pub struct MultiLevelView {
    levels: Vec<LevelView>, // levels[h-1] is level h
    num_transactions: usize,
}

impl MultiLevelView {
    /// Project `db` through `tax` at every level `1..=height`.
    ///
    /// The leaf level reuses the transactions as-is; shallower levels map
    /// each item to its ancestor and deduplicate.
    pub fn build(db: &TransactionDb, tax: &Taxonomy) -> Self {
        let height = tax.height();
        let node_count = tax.node_count();

        // anc[node][h-1] = ancestor of `node` at level h (for h <= level(node)).
        // Computed once by walking parents; ids are level-ordered so a
        // node's parent entry is already filled when we reach it.
        let mut levels: Vec<LevelView> = Vec::with_capacity(height);
        for h in 1..=height {
            let mut txns: Vec<Vec<NodeId>> = Vec::with_capacity(db.len());
            let mut item_support = vec![0u64; node_count];
            let mut tidsets: Vec<Vec<u32>> = vec![Vec::new(); node_count];
            for (tid, txn) in db.iter().enumerate() {
                let projected: Vec<NodeId> = if h == height {
                    txn.to_vec()
                } else {
                    let mut v: Vec<NodeId> = txn
                        .iter()
                        .map(|&it| {
                            tax.ancestor_at_level(it, h)
                                .expect("leaf items always have ancestors at every level")
                        })
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                for &it in &projected {
                    item_support[it.index()] += 1;
                    tidsets[it.index()].push(tid as u32);
                }
                txns.push(projected);
            }
            let present: Vec<NodeId> = (0..node_count)
                .filter(|&i| item_support[i] > 0)
                .map(NodeId::from_index)
                .collect();
            levels.push(LevelView {
                level: h,
                txns,
                item_support,
                tidsets,
                present,
            });
        }
        MultiLevelView {
            levels,
            num_transactions: db.len(),
        }
    }

    /// The view at abstraction level `h` (1-based).
    ///
    /// # Panics
    /// Panics if `h` is 0 or exceeds the taxonomy height.
    #[inline]
    pub fn level(&self, h: usize) -> &LevelView {
        assert!(
            h >= 1 && h <= self.levels.len(),
            "level {h} out of range 1..={}",
            self.levels.len()
        );
        &self.levels[h - 1]
    }

    /// Number of abstraction levels (= taxonomy height).
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Number of transactions.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_taxonomy::RebalancePolicy;

    /// The Fig. 4 toy taxonomy and database.
    pub(crate) fn toy() -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::from_edges(
            [
                ("a", ""),
                ("b", ""),
                ("a1", "a"),
                ("a2", "a"),
                ("b1", "b"),
                ("b2", "b"),
                ("a11", "a1"),
                ("a12", "a1"),
                ("a21", "a2"),
                ("a22", "a2"),
                ("b11", "b1"),
                ("b12", "b1"),
                ("b21", "b2"),
                ("b22", "b2"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let rows = vec![
            vec![g("a11"), g("a22"), g("b11"), g("b22")],
            vec![g("a11"), g("a21"), g("b11")],
            vec![g("a12"), g("a21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a21"), g("b22")],
            vec![g("a21"), g("b12")],
            vec![g("b12"), g("b21"), g("b22")],
            vec![g("b12"), g("b21")],
            vec![g("a22"), g("b12"), g("b22")],
        ];
        let db = TransactionDb::new(rows).unwrap();
        db.validate_against(&tax).unwrap();
        (tax, db)
    }

    #[test]
    fn leaf_level_is_identity() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        assert_eq!(mlv.height(), 3);
        assert_eq!(mlv.num_transactions(), 10);
        for (i, txn) in db.iter().enumerate() {
            assert_eq!(mlv.level(3).transaction(i), txn);
        }
    }

    #[test]
    fn level1_projection_matches_paper_figure() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let a = tax.node_by_name("a").unwrap();
        let b = tax.node_by_name("b").unwrap();
        let v1 = mlv.level(1);
        // Fig. 4 right column: D3 = {a}, D8/D9 = {b}, everything else {a, b}.
        assert_eq!(v1.transaction(2), &[a]);
        assert_eq!(v1.transaction(7), &[b]);
        assert_eq!(v1.transaction(8), &[b]);
        assert_eq!(v1.transaction(0), &[a, b]);
        // Supports from the figure: a appears in D1–D7 and D10 (8 rows);
        // b appears everywhere except D3 (9 rows).
        assert_eq!(v1.item_support(a), 8);
        assert_eq!(v1.item_support(b), 9);
    }

    #[test]
    fn level2_projection_merges_siblings() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let a1 = tax.node_by_name("a1").unwrap();
        let a2 = tax.node_by_name("a2").unwrap();
        let v2 = mlv.level(2);
        // D2 = {a11, a21, b11} → {a1, a2, b1}: 3 distinct level-2 items.
        assert_eq!(v2.transaction(1).len(), 3);
        assert!(v2.transaction(1).contains(&a1));
        assert!(v2.transaction(1).contains(&a2));
        // Supports from Fig. 4 middle column.
        assert_eq!(v2.item_support(a1), 6); // D1-D6
        assert_eq!(v2.item_support(a2), 8); // D1-D7, D10
    }

    #[test]
    fn tidsets_agree_with_supports() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        for h in 1..=3 {
            let v = mlv.level(h);
            for &item in v.present_items() {
                let tids = v.tidset(item);
                assert_eq!(
                    tids.len() as u64,
                    v.item_support(item),
                    "level {h} item {item}"
                );
                assert!(
                    tids.windows(2).all(|w| w[0] < w[1]),
                    "tidset must be sorted unique"
                );
                for &tid in tids {
                    assert!(v.transaction(tid as usize).contains(&item));
                }
            }
        }
    }

    #[test]
    fn absent_item_has_zero_support_and_empty_tidset() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let a11 = tax.node_by_name("a11").unwrap();
        // a11 is a leaf; at level 1 only categories are present.
        assert_eq!(mlv.level(1).item_support(a11), 0);
        assert!(mlv.level(1).tidset(a11).is_empty());
        assert!(!mlv.level(1).present_items().contains(&a11));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_zero_panics() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let _ = mlv.level(0);
    }

    #[test]
    fn present_items_sorted_and_exact() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let v1 = mlv.level(1);
        let names: Vec<&str> = v1.present_items().iter().map(|&n| tax.name(n)).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
