//! Multi-level views of a transaction database through a taxonomy.
//!
//! An `(h, k)`-itemset is evaluated against the database in which every item
//! has been replaced by its level-`h` generalization (paper §2.2, Fig. 4).
//! [`MultiLevelView`] materializes that projection once per level, together
//! with per-item supports and tid-lists, so the miner can evaluate any cell
//! of the search table without touching the raw data again.

use crate::transaction::TransactionDb;
use crate::{exec, DataError};
use flipper_taxonomy::{NodeId, Taxonomy};

/// The projection of a database to one abstraction level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelView {
    /// The abstraction level (1 = most general, `H` = leaves).
    pub level: usize,
    /// Projected transactions: items replaced by level-`level` ancestors,
    /// re-sorted and deduplicated (generalization can merge siblings).
    txns: Vec<Vec<NodeId>>,
    /// Support of each node present at this level (indexed by node id;
    /// absent nodes have support 0).
    item_support: Vec<u64>,
    /// Sorted transaction-id list per node id (empty for absent nodes).
    tidsets: Vec<Vec<u32>>,
    /// Nodes with non-zero support at this level, ascending by id.
    present: Vec<NodeId>,
}

impl LevelView {
    /// Projected transactions at this level.
    pub fn transactions(&self) -> impl Iterator<Item = &[NodeId]> {
        self.txns.iter().map(Vec::as_slice)
    }

    /// Projected transaction by index.
    #[inline]
    pub fn transaction(&self, idx: usize) -> &[NodeId] {
        &self.txns[idx]
    }

    /// Number of transactions (same at every level).
    #[inline]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the view holds no transactions (never true for views built
    /// from a valid database).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Support of a single node at this level.
    #[inline]
    pub fn item_support(&self, item: NodeId) -> u64 {
        self.item_support.get(item.index()).copied().unwrap_or(0)
    }

    /// Sorted tid-list of a node (empty slice if absent).
    #[inline]
    pub fn tidset(&self, item: NodeId) -> &[u32] {
        self.tidsets
            .get(item.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Nodes with non-zero support at this level, ascending by id.
    #[inline]
    pub fn present_items(&self) -> &[NodeId] {
        &self.present
    }
}

/// Projections of one database to every level of a taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiLevelView {
    levels: Vec<LevelView>, // levels[h-1] is level h
    num_transactions: usize,
}

impl MultiLevelView {
    /// Project `db` through `tax` at every level `1..=height`.
    ///
    /// The leaf level reuses the transactions as-is; shallower levels map
    /// each item to its ancestor and deduplicate. Delegates to
    /// [`MultiLevelViewBuilder`] (one chunk, sequential), so the full-load
    /// and chunk-streamed paths can never drift apart.
    ///
    /// # Panics
    /// Panics if the database is not valid for `tax` (items that are not
    /// leaves at the taxonomy height).
    pub fn build(db: &TransactionDb, tax: &Taxonomy) -> Self {
        Self::build_with_threads(db, tax, 1)
    }

    /// [`build`](MultiLevelView::build) with the per-chunk projection
    /// sharded over `threads` scoped workers (`0` = auto-detect, `1` =
    /// sequential). The result is bit-identical at every thread count.
    ///
    /// # Panics
    /// Panics if the database is not valid for `tax` (items that are not
    /// leaves at the taxonomy height).
    pub fn build_with_threads(db: &TransactionDb, tax: &Taxonomy, threads: usize) -> Self {
        let _span = flipper_obs::span("view.build").arg("rows", db.rows().len() as u64);
        let mut builder = MultiLevelViewBuilder::new(tax, threads);
        builder
            .push_chunk(db.rows())
            .expect("TransactionDb rows are canonical leaf itemsets");
        builder.finish().expect("TransactionDb is never empty")
    }

    /// The view at abstraction level `h` (1-based).
    ///
    /// # Panics
    /// Panics if `h` is 0 or exceeds the taxonomy height.
    #[inline]
    pub fn level(&self, h: usize) -> &LevelView {
        assert!(
            h >= 1 && h <= self.levels.len(),
            "level {h} out of range 1..={}",
            self.levels.len()
        );
        &self.levels[h - 1]
    }

    /// Number of abstraction levels (= taxonomy height).
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Number of transactions.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }
}

/// Incremental, chunk-at-a-time construction of a [`MultiLevelView`] —
/// the ingestion end of the streaming pipeline.
///
/// Feed transaction chunks (e.g. from an FBIN chunk reader) with
/// [`MultiLevelViewBuilder::push_chunk`]; each chunk's rows are
/// canonicalized, validated and projected to every abstraction level with
/// the projection work sharded over [`mod@crate::exec`] scoped workers, then
/// appended **in order**. The finished view is bit-identical to
/// [`MultiLevelView::build`] over the concatenation of all chunks, at every
/// thread count — so mining a streamed input produces exactly the results of
/// mining a fully loaded one, without the raw database ever materializing.
pub struct MultiLevelViewBuilder<'t> {
    tax: &'t Taxonomy,
    threads: usize,
    levels: Vec<LevelView>,
    num_transactions: usize,
}

impl<'t> MultiLevelViewBuilder<'t> {
    /// Start a builder over `tax`, sharding per-chunk projection over
    /// `threads` workers (`0` = auto-detect, `1` = sequential).
    pub fn new(tax: &'t Taxonomy, threads: usize) -> Self {
        let node_count = tax.node_count();
        let levels = (1..=tax.height())
            .map(|h| LevelView {
                level: h,
                txns: Vec::new(),
                item_support: vec![0u64; node_count],
                tidsets: vec![Vec::new(); node_count],
                present: Vec::new(),
            })
            .collect();
        MultiLevelViewBuilder {
            tax,
            threads,
            levels,
            num_transactions: 0,
        }
    }

    /// Transactions ingested so far.
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Ingest one chunk of transactions (leaf items, any order, duplicates
    /// allowed — rows are canonicalized exactly like
    /// [`TransactionDb::new`]).
    ///
    /// # Errors
    /// Rejects empty rows and items that are not leaves of the taxonomy;
    /// the reported transaction index is global across all pushed chunks.
    pub fn push_chunk(&mut self, rows: &[Vec<NodeId>]) -> Result<(), DataError> {
        let tax = self.tax;
        let height = tax.height();
        let base = self.num_transactions;
        // Canonicalize + validate + project, sharded across the chunk. Each
        // row is independent, and shard results are joined back in chunk
        // order, so the outcome is identical at every thread count.
        let shards = exec::map_chunks(self.threads, rows.len(), |range| {
            let mut out: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(range.len());
            for i in range {
                let mut canonical = rows[i].clone();
                canonical.sort_unstable();
                canonical.dedup();
                if canonical.is_empty() {
                    return Err(DataError::EmptyTransaction { txn: base + i });
                }
                for &item in &canonical {
                    if item.index() >= tax.node_count()
                        || tax.level_of(item) != height
                        || !tax.is_leaf(item)
                    {
                        return Err(DataError::NonLeafItem {
                            txn: base + i,
                            item,
                        });
                    }
                }
                let mut per_level: Vec<Vec<NodeId>> = Vec::with_capacity(height);
                for h in 1..height {
                    let mut v: Vec<NodeId> = canonical
                        .iter()
                        .map(|&it| {
                            tax.ancestor_at_level(it, h)
                                .expect("leaf items always have ancestors at every level")
                        })
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    per_level.push(v);
                }
                per_level.push(canonical);
                out.push(per_level);
            }
            Ok(out)
        });
        // Validate every shard before mutating any state: a rejected chunk
        // must leave the builder exactly as it was (no partially ingested
        // prefix), so callers can report the error and keep the view usable.
        let shards = shards.into_iter().collect::<Result<Vec<_>, _>>()?;
        for shard in shards {
            for per_level in shard {
                let tid = self.num_transactions as u32;
                for (lv, projected) in self.levels.iter_mut().zip(per_level) {
                    for &it in &projected {
                        lv.item_support[it.index()] += 1;
                        lv.tidsets[it.index()].push(tid);
                    }
                    lv.txns.push(projected);
                }
                self.num_transactions += 1;
            }
        }
        Ok(())
    }

    /// Finalize the view.
    ///
    /// # Errors
    /// Returns [`DataError::EmptyDatabase`] when no transactions were
    /// ingested, mirroring [`TransactionDb::new`].
    pub fn finish(mut self) -> Result<MultiLevelView, DataError> {
        if self.num_transactions == 0 {
            return Err(DataError::EmptyDatabase);
        }
        let node_count = self.tax.node_count();
        for lv in &mut self.levels {
            lv.present = (0..node_count)
                .filter(|&i| lv.item_support[i] > 0)
                .map(NodeId::from_index)
                .collect();
        }
        Ok(MultiLevelView {
            levels: self.levels,
            num_transactions: self.num_transactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_taxonomy::RebalancePolicy;

    /// The Fig. 4 toy taxonomy and database.
    pub(crate) fn toy() -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::from_edges(
            [
                ("a", ""),
                ("b", ""),
                ("a1", "a"),
                ("a2", "a"),
                ("b1", "b"),
                ("b2", "b"),
                ("a11", "a1"),
                ("a12", "a1"),
                ("a21", "a2"),
                ("a22", "a2"),
                ("b11", "b1"),
                ("b12", "b1"),
                ("b21", "b2"),
                ("b22", "b2"),
            ],
            RebalancePolicy::RequireBalanced,
        )
        .unwrap();
        let g = |s: &str| tax.node_by_name(s).unwrap();
        let rows = vec![
            vec![g("a11"), g("a22"), g("b11"), g("b22")],
            vec![g("a11"), g("a21"), g("b11")],
            vec![g("a12"), g("a21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a22"), g("b21")],
            vec![g("a12"), g("a21"), g("b22")],
            vec![g("a21"), g("b12")],
            vec![g("b12"), g("b21"), g("b22")],
            vec![g("b12"), g("b21")],
            vec![g("a22"), g("b12"), g("b22")],
        ];
        let db = TransactionDb::new(rows).unwrap();
        db.validate_against(&tax).unwrap();
        (tax, db)
    }

    #[test]
    fn leaf_level_is_identity() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        assert_eq!(mlv.height(), 3);
        assert_eq!(mlv.num_transactions(), 10);
        for (i, txn) in db.iter().enumerate() {
            assert_eq!(mlv.level(3).transaction(i), txn);
        }
    }

    #[test]
    fn build_with_threads_is_bit_identical() {
        let (tax, db) = toy();
        let sequential = MultiLevelView::build(&db, &tax);
        for threads in [0usize, 2, 4] {
            assert_eq!(
                MultiLevelView::build_with_threads(&db, &tax, threads),
                sequential,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn level1_projection_matches_paper_figure() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let a = tax.node_by_name("a").unwrap();
        let b = tax.node_by_name("b").unwrap();
        let v1 = mlv.level(1);
        // Fig. 4 right column: D3 = {a}, D8/D9 = {b}, everything else {a, b}.
        assert_eq!(v1.transaction(2), &[a]);
        assert_eq!(v1.transaction(7), &[b]);
        assert_eq!(v1.transaction(8), &[b]);
        assert_eq!(v1.transaction(0), &[a, b]);
        // Supports from the figure: a appears in D1–D7 and D10 (8 rows);
        // b appears everywhere except D3 (9 rows).
        assert_eq!(v1.item_support(a), 8);
        assert_eq!(v1.item_support(b), 9);
    }

    #[test]
    fn level2_projection_merges_siblings() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let a1 = tax.node_by_name("a1").unwrap();
        let a2 = tax.node_by_name("a2").unwrap();
        let v2 = mlv.level(2);
        // D2 = {a11, a21, b11} → {a1, a2, b1}: 3 distinct level-2 items.
        assert_eq!(v2.transaction(1).len(), 3);
        assert!(v2.transaction(1).contains(&a1));
        assert!(v2.transaction(1).contains(&a2));
        // Supports from Fig. 4 middle column.
        assert_eq!(v2.item_support(a1), 6); // D1-D6
        assert_eq!(v2.item_support(a2), 8); // D1-D7, D10
    }

    #[test]
    fn tidsets_agree_with_supports() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        for h in 1..=3 {
            let v = mlv.level(h);
            for &item in v.present_items() {
                let tids = v.tidset(item);
                assert_eq!(
                    tids.len() as u64,
                    v.item_support(item),
                    "level {h} item {item}"
                );
                assert!(
                    tids.windows(2).all(|w| w[0] < w[1]),
                    "tidset must be sorted unique"
                );
                for &tid in tids {
                    assert!(v.transaction(tid as usize).contains(&item));
                }
            }
        }
    }

    #[test]
    fn absent_item_has_zero_support_and_empty_tidset() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let a11 = tax.node_by_name("a11").unwrap();
        // a11 is a leaf; at level 1 only categories are present.
        assert_eq!(mlv.level(1).item_support(a11), 0);
        assert!(mlv.level(1).tidset(a11).is_empty());
        assert!(!mlv.level(1).present_items().contains(&a11));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_zero_panics() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let _ = mlv.level(0);
    }

    #[test]
    fn builder_chunked_matches_build() {
        let (tax, db) = toy();
        let full = MultiLevelView::build(&db, &tax);
        let rows: Vec<Vec<NodeId>> = db.iter().map(<[NodeId]>::to_vec).collect();
        for threads in [1usize, 3] {
            for chunk_len in [1usize, 3, 10] {
                let mut b = MultiLevelViewBuilder::new(&tax, threads);
                for chunk in rows.chunks(chunk_len) {
                    b.push_chunk(chunk).unwrap();
                }
                assert_eq!(
                    b.finish().unwrap(),
                    full,
                    "threads={threads} chunk_len={chunk_len}"
                );
            }
        }
    }

    #[test]
    fn builder_rejects_bad_chunks_atomically() {
        let (tax, db) = toy();
        let rows: Vec<Vec<NodeId>> = db.iter().map(<[NodeId]>::to_vec).collect();
        let mut b = MultiLevelViewBuilder::new(&tax, 4);
        b.push_chunk(&rows[..4]).unwrap();
        // A chunk whose LAST row is invalid (an internal node): the valid
        // prefix must NOT be ingested — the failed chunk leaves no trace.
        let a1 = tax.node_by_name("a1").unwrap();
        let mut bad = rows[4..].to_vec();
        bad.push(vec![a1]);
        let err = b.push_chunk(&bad).unwrap_err();
        assert_eq!(
            err,
            crate::DataError::NonLeafItem {
                txn: 4 + bad.len() - 1,
                item: a1
            }
        );
        assert_eq!(
            b.num_transactions(),
            4,
            "failed chunk must not be partially ingested"
        );
        // The builder stays usable: retry with the valid rows and match the
        // full build exactly.
        b.push_chunk(&rows[4..]).unwrap();
        assert_eq!(b.finish().unwrap(), MultiLevelView::build(&db, &tax));
        // Empty rows and empty builders report the canonical errors.
        let mut b = MultiLevelViewBuilder::new(&tax, 1);
        assert_eq!(
            b.push_chunk(&[Vec::new()]).unwrap_err(),
            crate::DataError::EmptyTransaction { txn: 0 }
        );
        assert_eq!(
            MultiLevelViewBuilder::new(&tax, 1).finish().unwrap_err(),
            crate::DataError::EmptyDatabase
        );
    }

    #[test]
    fn present_items_sorted_and_exact() {
        let (tax, db) = toy();
        let mlv = MultiLevelView::build(&db, &tax);
        let v1 = mlv.level(1);
        let names: Vec<&str> = v1.present_items().iter().map(|&n| tax.name(n)).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
