//! The two-level counting cache: a cross-cell prefix cache for the grouped
//! counting kernels, and a session-level support cache that seeds repeated
//! mining runs.
//!
//! # Level 1 — cross-cell prefix cache
//!
//! The grouped kernels ([`crate::TidsetCounter`], [`crate::BitsetCounter`])
//! materialize each `(k−1)`-prefix intersection once per batch, but every
//! batch used to start from level singletons. [`PrefixCache`] retains the
//! materialized prefixes *across* batches, keyed by `(h, prefix)`: when the
//! `k`-column of a cell is counted, each group first probes for its exact
//! prefix and then for the parent `(k−2)`-prefix the `(h, k−1)` cell
//! materialized — a hit replaces the full shortest-first rebuild with at
//! most one incremental intersection.
//!
//! Caching never changes counts, and the cached kernels charge
//! *as-if-uncached* [`crate::CounterStats`] (exact — see the kernel docs),
//! so results **and statistics** stay bit-identical to uncached runs at
//! every thread count and budget. Sharded execution keeps one
//! [`PrefixCache`] per worker slot ([`CellCache`]), merge-free: a shard only
//! ever sees prefixes it materialized itself, so no cross-thread state can
//! leak into the result path.
//!
//! The cache enforces an explicit byte budget with LRU eviction at *cell*
//! granularity — entries are grouped by `(h, prefix length)`, the unit the
//! miner naturally retires as it moves through the search table. Budget `0`
//! disables caching entirely (every probe misses, nothing is stored), which
//! degenerates to the per-batch behavior.
//!
//! # Level 2 — session support cache
//!
//! Supports are properties of the data alone — no threshold, pruning
//! variant, engine or thread count changes them. [`SupportCache`] is a
//! `(h, itemset) → support` map a session fills from completed runs and
//! consults before counting, so sweep grid points that differ only in γ/ε
//! (or pruning, or engine) never recount itemsets an earlier run already
//! counted.
//!
//! Everything here sits on the `flipper-results/v1` result path, so only
//! ordered containers are used (`flipper-lint`'s determinism rule holds
//! this module to the same rules as the miner).

use crate::bitset::Bitmap;
use crate::itemset::Itemset;
use flipper_taxonomy::NodeId;
use std::collections::BTreeMap;

/// Default byte budget for the per-run cross-cell prefix cache (16 MiB).
pub const DEFAULT_CACHE_BUDGET: usize = 16 << 20;

/// Fixed per-entry bookkeeping estimate (keys, tree nodes, vec headers).
const ENTRY_OVERHEAD: usize = 64;

/// Consecutive non-matching resident entries [`SupportCache::seed_batch`]
/// walks past before re-anchoring its cursor with a fresh seek.
const SEED_SKIP_RESTART: usize = 32;

/// Cache efficiency counters. All counters are sums, so per-shard stats
/// merge associatively; none of them feed `flipper-results/v1` bytes — they
/// exist for benches and diagnostics only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Prefix-cache probes (exact and parent probes both count).
    pub lookups: u64,
    /// Probes answered by the exact `(h, prefix)` entry.
    pub exact_hits: u64,
    /// Probes answered from the parent `(k−2)`-prefix plus one incremental
    /// intersection.
    pub parent_hits: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Cells evicted to hold the byte budget.
    pub evicted_cells: u64,
    /// Bytes resident (estimate; summed across shards when merged).
    pub bytes_resident: u64,
    /// Support-cache probes.
    pub seed_lookups: u64,
    /// Support-cache probes answered without counting.
    pub seed_hits: u64,
}

impl CacheStats {
    /// Fold `other` into `self` (all fields are sums).
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.exact_hits += other.exact_hits;
        self.parent_hits += other.parent_hits;
        self.insertions += other.insertions;
        self.evicted_cells += other.evicted_cells;
        self.bytes_resident += other.bytes_resident;
        self.seed_lookups += other.seed_lookups;
        self.seed_hits += other.seed_hits;
    }

    /// Fraction of prefix probes that hit (exact or parent), in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (self.exact_hits + self.parent_hits) as f64 / self.lookups as f64
    }
}

/// A materialized prefix in whichever representation its kernel produced.
#[derive(Debug, Clone)]
pub enum CachedPrefix {
    /// Sorted tid-list (tidset kernel; sparse bitset prefixes).
    Tids(Vec<u32>),
    /// Packed bitmap (all-dense bitset prefixes).
    Bits(Bitmap),
}

impl CachedPrefix {
    fn bytes(&self) -> usize {
        match self {
            CachedPrefix::Tids(t) => t.len() * std::mem::size_of::<u32>(),
            CachedPrefix::Bits(b) => b.len().div_ceil(64) * std::mem::size_of::<u64>(),
        }
    }
}

/// One cell's worth of cached prefixes: all entries sharing `(h, len)`.
#[derive(Debug, Default)]
struct CellEntry {
    map: BTreeMap<Vec<NodeId>, CachedPrefix>,
    bytes: usize,
    /// Last-touched tick for cell-granular LRU.
    tick: u64,
}

/// A budgeted `(h, prefix) → materialized intersection` cache.
///
/// Entries are grouped into cells keyed `(h, prefix length)`; eviction
/// removes whole least-recently-touched cells until the byte budget holds.
/// A budget of `0` disables the cache (probes miss, inserts drop).
#[derive(Debug)]
pub struct PrefixCache {
    budget: usize,
    cells: BTreeMap<(usize, usize), CellEntry>,
    bytes: usize,
    /// Deterministic logical clock: bumped on every touch.
    tick: u64,
    stats: CacheStats,
}

impl PrefixCache {
    /// Create a cache holding at most `budget` bytes of prefix payload
    /// (estimate, including fixed per-entry overhead). `0` disables it.
    pub fn new(budget: usize) -> Self {
        PrefixCache {
            budget,
            cells: BTreeMap::new(),
            bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether the cache stores anything at all (budget > 0).
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Number of cached prefixes.
    pub fn len(&self) -> usize {
        self.cells.values().map(|c| c.map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cells.values().all(|c| c.map.is_empty())
    }

    /// Estimated resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Probe for the prefix `(h, prefix)`. Counts a lookup and touches the
    /// containing cell's LRU tick; hit classification (exact vs parent) is
    /// the caller's, via [`PrefixCache::stats_mut`].
    pub fn lookup(&mut self, h: usize, prefix: &[NodeId]) -> Option<&CachedPrefix> {
        if self.budget == 0 {
            return None;
        }
        self.stats.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let cell = self.cells.get_mut(&(h, prefix.len()))?;
        cell.tick = tick;
        cell.map.get(prefix)
    }

    /// Insert (or replace) the materialized prefix for `(h, prefix)`,
    /// evicting least-recently-touched cells while the budget is exceeded.
    /// No-op when disabled.
    pub fn insert(&mut self, h: usize, prefix: &[NodeId], value: CachedPrefix) {
        if self.budget == 0 {
            return;
        }
        let cost = std::mem::size_of_val(prefix) + value.bytes() + ENTRY_OVERHEAD;
        self.tick += 1;
        let tick = self.tick;
        let key = (h, prefix.len());
        let cell = self.cells.entry(key).or_default();
        cell.tick = tick;
        if let Some(old) = cell.map.insert(prefix.to_vec(), value) {
            let old_cost = std::mem::size_of_val(prefix) + old.bytes() + ENTRY_OVERHEAD;
            cell.bytes -= old_cost;
            self.bytes -= old_cost;
        }
        cell.bytes += cost;
        self.bytes += cost;
        self.stats.insertions += 1;
        // Evict whole least-recently-touched cells (never the one just
        // touched) while over budget; ties break on the smaller cell key,
        // so eviction order is deterministic.
        while self.bytes > self.budget && self.cells.len() > 1 {
            let victim = self
                .cells
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(&k, e)| (e.tick, k))
                .map(|(&k, _)| k);
            let Some(victim) = victim else { break };
            if let Some(evicted) = self.cells.remove(&victim) {
                self.bytes -= evicted.bytes;
                self.stats.evicted_cells += 1;
                flipper_obs::event(
                    "cache.evict",
                    &[
                        ("h", victim.0 as u64),
                        ("len", victim.1 as u64),
                        ("bytes", evicted.bytes as u64),
                    ],
                );
            }
        }
        if self.bytes > self.budget {
            // The current cell alone exceeds the budget: a hard budget
            // means it cannot stay resident either.
            flipper_obs::event(
                "cache.evict",
                &[
                    ("h", key.0 as u64),
                    ("len", key.1 as u64),
                    ("bytes", self.bytes as u64),
                ],
            );
            self.cells.clear();
            self.bytes = 0;
            self.stats.evicted_cells += 1;
        }
    }

    /// Mutable access to the efficiency counters, for kernels classifying
    /// their hits.
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Efficiency counters with `bytes_resident` refreshed.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            bytes_resident: self.bytes as u64,
            ..self.stats
        }
    }

    /// Drop every entry (budget and accumulated stats are kept).
    pub fn clear(&mut self) {
        self.cells.clear();
        self.bytes = 0;
    }
}

/// The per-run cache handed to [`crate::SupportCounter::count_batch_cached`]:
/// one [`PrefixCache`] per worker slot so sharded counting stays merge-free
/// — a shard only reads and writes its own slot, and results are
/// bit-identical at every thread count because the cached kernels never let
/// cache state influence counts or charged statistics.
///
/// The byte budget applies per shard (each worker's slot gets the full
/// budget; the whole-run bound is `budget × workers`).
#[derive(Debug)]
pub struct CellCache {
    budget: usize,
    shards: Vec<PrefixCache>,
}

impl CellCache {
    /// Create a cache whose shards each hold at most `budget` bytes.
    pub fn new(budget: usize) -> Self {
        CellCache {
            budget,
            shards: Vec::new(),
        }
    }

    /// A cache that stores nothing — [`crate::SupportCounter::count_batch_cached`]
    /// degenerates to plain sharded counting.
    pub fn disabled() -> Self {
        CellCache::new(0)
    }

    /// The per-shard byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Whether any caching happens at all.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// The sequential (shard 0) cache slot.
    pub fn shard(&mut self) -> &mut PrefixCache {
        &mut self.shards_mut(1)[0]
    }

    /// At least `n` shard slots, growing lazily; slot `i` is always handed
    /// to worker `i`, so a rerun at the same thread count reuses the warm
    /// per-worker caches.
    pub fn shards_mut(&mut self, n: usize) -> &mut [PrefixCache] {
        let n = n.max(1);
        while self.shards.len() < n {
            self.shards.push(PrefixCache::new(self.budget));
        }
        &mut self.shards[..n]
    }

    /// Merged efficiency counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }
}

/// Session-level `(h, itemset) → support` cache.
///
/// Supports are engine-, threshold- and thread-independent facts about the
/// data, so any completed run may seed any later run over the same view.
/// The optional byte cap is a soft stop: once exceeded, further inserts are
/// dropped (deterministically) rather than evicting — the map only ever
/// holds exact counted values, so staleness cannot occur.
#[derive(Debug, Default)]
pub struct SupportCache {
    map: BTreeMap<(usize, Itemset), u64>,
    bytes: usize,
    cap: Option<usize>,
    stats: CacheStats,
}

impl SupportCache {
    /// An unbounded support cache.
    pub fn new() -> Self {
        SupportCache::default()
    }

    /// A support cache that stops absorbing entries once `cap` bytes
    /// (estimated) are resident.
    pub fn with_cap(cap: usize) -> Self {
        SupportCache {
            cap: Some(cap),
            ..SupportCache::default()
        }
    }

    /// Known support of `set` at level `h`, if any run counted it before.
    /// Immutable so a read-locked cache can seed concurrent sweep jobs.
    pub fn get(&self, h: usize, set: &Itemset) -> Option<u64> {
        self.map.get(&(h, set.clone())).copied()
    }

    /// Answer a whole candidate batch from the cache in one ordered merge.
    ///
    /// `candidates` must be sorted ascending (the miner's candidate batches
    /// are — Apriori joins emit them in order). Instead of one `BTreeMap`
    /// probe (and one `Itemset` clone for the probe key) per candidate,
    /// this walks a single range cursor over the `(h, …)` key span in
    /// lockstep with the batch: `O(C + R)` comparisons for `C` candidates
    /// against `R` resident entries in the level, with zero per-candidate
    /// allocations. When the resident span is much larger than the batch,
    /// a skip-restart heuristic re-anchors the cursor with a fresh
    /// `range()` seek after `SEED_SKIP_RESTART` consecutive non-matching
    /// entries, bounding the walk at `O(C log R)`.
    ///
    /// Calls `found(i, support)` for every candidate `i` whose support is
    /// cached, in ascending `i`, and returns the number of hits. Like
    /// [`SupportCache::get`] this is `&self`, so a read-locked cache can
    /// seed concurrent sweep jobs.
    ///
    /// # Panics
    /// Debug-asserts that `candidates` is sorted.
    pub fn seed_batch<F>(&self, h: usize, candidates: &[Itemset], mut found: F) -> u64
    where
        F: FnMut(usize, u64),
    {
        debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]));
        let Some(first) = candidates.first() else {
            return 0;
        };
        if self.map.is_empty() {
            return 0;
        }
        let mut hits = 0u64;
        let mut cursor = self.map.range((h, first.clone())..).peekable();
        let mut skipped = 0usize;
        for (i, cand) in candidates.iter().enumerate() {
            let hit = loop {
                match cursor.peek() {
                    // Resident entries for this level exhausted: no later
                    // candidate can hit either.
                    None => return hits,
                    Some(((eh, _), _)) if *eh != h => return hits,
                    Some(((_, set), &sup)) => match set.cmp(cand) {
                        std::cmp::Ordering::Less => {
                            if skipped >= SEED_SKIP_RESTART {
                                // Long resident run between candidates:
                                // seek instead of walking entry by entry.
                                cursor = self.map.range((h, cand.clone())..).peekable();
                                skipped = 0;
                            } else {
                                cursor.next();
                                skipped += 1;
                            }
                        }
                        std::cmp::Ordering::Equal => break Some(sup),
                        std::cmp::Ordering::Greater => break None,
                    },
                }
            };
            skipped = 0;
            if let Some(sup) = hit {
                found(i, sup);
                hits += 1;
                cursor.next();
            }
        }
        hits
    }

    /// Record a counted support. Drops the insert once the byte cap is hit.
    pub fn insert(&mut self, h: usize, set: &Itemset, support: u64) {
        if self.cap.is_some_and(|cap| self.bytes >= cap) {
            return;
        }
        let cost = set.len() * std::mem::size_of::<NodeId>() + ENTRY_OVERHEAD;
        if self.map.insert((h, set.clone()), support).is_none() {
            self.bytes += cost;
            self.stats.insertions += 1;
        }
    }

    /// Credit one seeded counting round to the stats. [`SupportCache::get`]
    /// is deliberately `&self` (a read-locked cache can seed concurrent
    /// jobs), so probe counters are reported back in bulk by the caller
    /// that drove the round.
    pub fn record_seed_round(&mut self, lookups: u64, hits: u64) {
        self.stats.seed_lookups += lookups;
        self.stats.seed_hits += hits;
        flipper_obs::counter_add("flipper_seed_lookups_total", lookups);
        flipper_obs::counter_add("flipper_seed_hits_total", hits);
    }

    /// Number of cached supports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no supports are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Estimated resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Insertion counters plus resident bytes.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            bytes_resident: self.bytes as u64,
            ..self.stats
        }
    }

    /// Drop every cached support.
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId::from_index(i)).collect()
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = PrefixCache::new(0);
        assert!(!c.enabled());
        c.insert(1, &ids(&[1, 2]), CachedPrefix::Tids(vec![1, 2, 3]));
        assert!(c.lookup(1, &ids(&[1, 2])).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().lookups, 0, "disabled probes are free");
    }

    #[test]
    fn exact_roundtrip_and_stats() {
        let mut c = PrefixCache::new(1 << 20);
        let p = ids(&[3, 5]);
        assert!(c.lookup(2, &p).is_none());
        c.insert(2, &p, CachedPrefix::Tids(vec![10, 20]));
        match c.lookup(2, &p) {
            Some(CachedPrefix::Tids(t)) => assert_eq!(t, &vec![10, 20]),
            other => panic!("expected tids hit, got {other:?}"),
        }
        // Different level or different prefix: miss.
        assert!(c.lookup(3, &p).is_none());
        assert!(c.lookup(2, &ids(&[3, 6])).is_none());
        let s = c.stats();
        assert_eq!(s.lookups, 4);
        assert_eq!(s.insertions, 1);
        assert!(s.bytes_resident > 0);
    }

    #[test]
    fn replacing_an_entry_keeps_bytes_consistent() {
        let mut c = PrefixCache::new(1 << 20);
        let p = ids(&[1, 2]);
        c.insert(1, &p, CachedPrefix::Tids(vec![0; 100]));
        let b1 = c.bytes();
        c.insert(1, &p, CachedPrefix::Tids(vec![0; 100]));
        assert_eq!(c.bytes(), b1, "same payload, same accounting");
        c.insert(1, &p, CachedPrefix::Tids(vec![0; 10]));
        assert!(c.bytes() < b1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_lru_over_cells() {
        // Budget fits roughly two cells of one ~400-byte entry each.
        let mut c = PrefixCache::new(1100);
        c.insert(1, &ids(&[1, 2]), CachedPrefix::Tids(vec![0; 80])); // cell (1,2)
        c.insert(1, &ids(&[1, 2, 3]), CachedPrefix::Tids(vec![0; 80])); // cell (1,3)
                                                                        // Touch (1,2) so (1,3) is the LRU cell.
        assert!(c.lookup(1, &ids(&[1, 2])).is_some());
        c.insert(2, &ids(&[4, 5]), CachedPrefix::Tids(vec![0; 80])); // cell (2,2) — over budget
        assert!(c.lookup(1, &ids(&[1, 2, 3])).is_none(), "LRU cell evicted");
        assert!(c.lookup(1, &ids(&[1, 2])).is_some(), "touched cell kept");
        assert!(c.lookup(2, &ids(&[4, 5])).is_some(), "newest cell kept");
        assert!(c.stats().evicted_cells >= 1);
        assert!(c.bytes() <= 1100);
    }

    #[test]
    fn oversized_single_cell_is_dropped_entirely() {
        let mut c = PrefixCache::new(100);
        c.insert(1, &ids(&[1, 2]), CachedPrefix::Tids(vec![0; 1000]));
        assert_eq!(c.len(), 0, "an entry that breaks the budget cannot stay");
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn bitmap_entries_account_bytes() {
        let mut c = PrefixCache::new(1 << 20);
        c.insert(1, &ids(&[1, 2]), CachedPrefix::Bits(Bitmap::zeros(640)));
        assert!(c.bytes() >= 640 / 8);
        assert!(matches!(
            c.lookup(1, &ids(&[1, 2])),
            Some(CachedPrefix::Bits(_))
        ));
    }

    #[test]
    fn cell_cache_shards_are_independent() {
        let mut cc = CellCache::new(1 << 20);
        assert!(cc.enabled());
        let shards = cc.shards_mut(3);
        assert_eq!(shards.len(), 3);
        shards[0].insert(1, &ids(&[1, 2]), CachedPrefix::Tids(vec![7]));
        assert!(shards[1].lookup(1, &ids(&[1, 2])).is_none());
        let s = cc.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.lookups, 1);
        // Shard slots persist: asking for fewer shards keeps earlier ones.
        let shard0 = cc.shard();
        assert!(shard0.lookup(1, &ids(&[1, 2])).is_some());
    }

    #[test]
    fn support_cache_roundtrip() {
        let mut sc = SupportCache::new();
        let set = Itemset::pair(NodeId::from_index(1), NodeId::from_index(4));
        assert!(sc.get(2, &set).is_none());
        sc.insert(2, &set, 17);
        assert_eq!(sc.get(2, &set), Some(17));
        assert!(sc.get(1, &set).is_none(), "level is part of the key");
        assert_eq!(sc.len(), 1);
        assert!(sc.bytes() > 0);
        sc.clear();
        assert!(sc.is_empty());
    }

    #[test]
    fn support_cache_cap_stops_absorbing() {
        let mut sc = SupportCache::with_cap(ENTRY_OVERHEAD + 1);
        let a = Itemset::single(NodeId::from_index(1));
        let b = Itemset::single(NodeId::from_index(2));
        sc.insert(1, &a, 5);
        sc.insert(1, &b, 6);
        assert_eq!(sc.get(1, &a), Some(5));
        assert!(sc.get(1, &b).is_none(), "cap reached: insert dropped");
        assert_eq!(sc.len(), 1);
    }

    fn set3(a: usize, b: usize, c: usize) -> Itemset {
        Itemset::new(vec![
            NodeId::from_index(a),
            NodeId::from_index(b),
            NodeId::from_index(c),
        ])
    }

    /// `seed_batch` must agree exactly with per-candidate `get` probes.
    fn assert_batch_matches_get(sc: &SupportCache, h: usize, candidates: &[Itemset]) {
        let mut batch: Vec<Option<u64>> = vec![None; candidates.len()];
        let hits = sc.seed_batch(h, candidates, |i, sup| batch[i] = Some(sup));
        let individual: Vec<Option<u64>> = candidates.iter().map(|c| sc.get(h, c)).collect();
        assert_eq!(batch, individual);
        assert_eq!(hits, individual.iter().flatten().count() as u64);
    }

    #[test]
    fn seed_batch_matches_individual_probes() {
        let mut sc = SupportCache::new();
        // Resident: every third triple at h=2, plus noise at other levels.
        let all: Vec<Itemset> = (0..120).map(|i| set3(i, i + 200, i + 400)).collect();
        for (i, set) in all.iter().enumerate() {
            if i % 3 == 0 {
                sc.insert(2, set, 1000 + i as u64);
            }
            if i % 5 == 0 {
                sc.insert(1, set, 7);
                sc.insert(3, set, 9);
            }
        }
        assert_batch_matches_get(&sc, 2, &all);
        assert_batch_matches_get(&sc, 1, &all);
        assert_batch_matches_get(&sc, 4, &all);
        // Sparse batch over a dense residency (exercises skip-restart).
        let sparse: Vec<Itemset> = (0..120)
            .step_by(40)
            .map(|i| set3(i, i + 200, i + 400))
            .collect();
        assert_batch_matches_get(&sc, 2, &sparse);
    }

    #[test]
    fn seed_batch_skip_restart_crosses_long_resident_runs() {
        let mut sc = SupportCache::new();
        // A long run of resident entries between the two candidates forces
        // the cursor past SEED_SKIP_RESTART and into the re-anchor path.
        for i in 0..500 {
            sc.insert(2, &set3(i, i + 1000, i + 2000), i as u64);
        }
        let candidates = vec![set3(0, 1000, 2000), set3(499, 1499, 2499)];
        assert_batch_matches_get(&sc, 2, &candidates);
    }

    #[test]
    fn seed_batch_edge_cases() {
        let sc = SupportCache::new();
        assert_eq!(sc.seed_batch(1, &[], |_, _| panic!("no hits")), 0);
        assert_eq!(
            sc.seed_batch(1, &[set3(1, 2, 3)], |_, _| panic!("empty cache")),
            0
        );
        let mut sc = SupportCache::new();
        sc.insert(9, &set3(1, 2, 3), 4);
        assert_eq!(
            sc.seed_batch(1, &[set3(1, 2, 3)], |_, _| panic!("wrong level")),
            0
        );
        assert_batch_matches_get(&sc, 9, &[set3(1, 2, 3)]);
    }

    #[test]
    fn cache_stats_merge_sums() {
        let mut a = CacheStats {
            lookups: 10,
            exact_hits: 4,
            parent_hits: 2,
            insertions: 3,
            evicted_cells: 1,
            bytes_resident: 100,
            seed_lookups: 9,
            seed_hits: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.lookups, 20);
        assert_eq!(a.exact_hits, 8);
        assert_eq!(a.bytes_resident, 200);
        assert!((a.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
