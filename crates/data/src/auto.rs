//! Density-driven per-level engine auto-selection.
//!
//! Vertical (tid-list) and horizontal (scan) counting trade off exactly
//! along data density (cf. the disk-based counting concerns surveyed in the
//! literature): intersecting tid-lists wins on sparse levels where lists are
//! short, packed bitmaps win on dense levels where a list would enumerate a
//! large fraction of all transactions, and a grouped sequential scan wins on
//! tiny databases where one pass over the data costs less than assembling
//! per-candidate intersection machinery. Taxonomy projections make this a
//! *per-level* property — level 1 of a retail taxonomy can be two orders of
//! magnitude denser than the leaves — so [`AutoCounter`] measures density
//! per level once and dispatches every shard to the engine chosen for its
//! level.
//!
//! Density at level `h` is the mean relative item support
//!
//! ```text
//! density(h) = Σᵢ sup(i) / (|items(h)| · N)  =  avg-txn-width(h) / |items(h)|
//! ```
//!
//! i.e. the fill ratio of the level's item × transaction incidence matrix.
//! The selection rule (thresholds documented in the README):
//!
//! * `density ≥ 1/16` → [`BitsetCounter`] (dense bitmaps pay for themselves);
//! * else `N ≤ 256` → [`ScanCounter`] (one pass over a tiny database is
//!   cheaper than building per-candidate state; note a sparse level always
//!   has `> 16` distinct items, since every projected transaction is
//!   non-empty and so `density ≥ 1/|items|`);
//! * else → [`TidsetCounter`].

use crate::bitset::BitsetCounter;
use crate::counting::{CounterStats, CountingEngine, ScanCounter, SupportCounter, TidsetCounter};
use crate::itemset::Itemset;
use crate::projection::MultiLevelView;
use flipper_taxonomy::NodeId;

/// Density at or above which a level is counted with bitmaps; equals the
/// bitset engine's own per-item promotion threshold so a level chosen for
/// bitmaps actually gets its items promoted.
pub const AUTO_BITSET_DENSITY: f64 = BitsetCounter::DEFAULT_DENSITY;

/// Sparse databases with at most this many transactions are counted by the
/// grouped sequential scan.
pub const AUTO_SCAN_MAX_TXNS: usize = 256;

/// Fill ratio of the item × transaction incidence matrix at level `h`.
pub fn level_density(view: &MultiLevelView, h: usize) -> f64 {
    let lv = view.level(h);
    let items = lv.present_items().len();
    let n = view.num_transactions();
    if items == 0 || n == 0 {
        return 0.0;
    }
    let total: u64 = lv.present_items().iter().map(|&i| lv.item_support(i)).sum();
    total as f64 / (items as f64 * n as f64)
}

/// Pick the concrete engine for one level from its measured density.
fn choose(view: &MultiLevelView, h: usize) -> CountingEngine {
    if level_density(view, h) >= AUTO_BITSET_DENSITY {
        CountingEngine::Bitset
    } else if view.num_transactions() <= AUTO_SCAN_MAX_TXNS {
        CountingEngine::Scan
    } else {
        CountingEngine::Tidset
    }
}

/// Per-level auto-selecting counter: measures density once at construction,
/// then dispatches every (sharded) batch to the engine chosen for its level.
///
/// The delegates are used purely as shard cores ([`SupportCounter::count_shard`]
/// is immutable); `AutoCounter` owns the single stats accumulator, so its
/// reported [`CounterStats`] are the deterministic fold of all levels' work
/// in batch order, exactly as for a single-engine run.
pub struct AutoCounter<'v> {
    view: &'v MultiLevelView,
    /// Chosen engine per level (index `h-1`).
    choices: Vec<CountingEngine>,
    tidset: TidsetCounter<'v>,
    scan: ScanCounter<'v>,
    bitset: BitsetCounter<'v>,
    stats: CounterStats,
}

impl<'v> AutoCounter<'v> {
    /// Measure per-level density over `view` and build the delegates.
    /// Bitmaps are constructed only for the levels that chose them.
    pub fn new(view: &'v MultiLevelView) -> Self {
        let choices: Vec<CountingEngine> = (1..=view.height()).map(|h| choose(view, h)).collect();
        let mask: Vec<bool> = choices
            .iter()
            .map(|&c| c == CountingEngine::Bitset)
            .collect();
        AutoCounter {
            view,
            tidset: TidsetCounter::new(view),
            scan: ScanCounter::new(view),
            bitset: BitsetCounter::with_density_at_levels(
                view,
                BitsetCounter::DEFAULT_DENSITY,
                Some(&mask),
            ),
            choices,
            stats: CounterStats::default(),
        }
    }

    /// The engine selected for level `h` (diagnostics and bench reports).
    pub fn chosen_engine(&self, h: usize) -> CountingEngine {
        self.choices[h - 1]
    }

    /// Chosen engines for all levels, index `h-1`.
    pub fn chosen_engines(&self) -> &[CountingEngine] {
        &self.choices
    }
}

impl SupportCounter for AutoCounter<'_> {
    fn num_transactions(&self) -> u64 {
        self.view.num_transactions() as u64
    }

    fn item_support(&self, h: usize, item: NodeId) -> u64 {
        self.view.level(h).item_support(item)
    }

    fn present_items(&self, h: usize) -> &[NodeId] {
        self.view.level(h).present_items()
    }

    fn count_shard(&self, h: usize, candidates: &[Itemset]) -> (Vec<u64>, CounterStats) {
        match self.choices[h - 1] {
            CountingEngine::Tidset => self.tidset.count_shard(h, candidates),
            CountingEngine::Scan => self.scan.count_shard(h, candidates),
            CountingEngine::Bitset => self.bitset.count_shard(h, candidates),
            CountingEngine::Auto => unreachable!("auto never selects itself"),
        }
    }

    fn batch_stats(&self, h: usize, candidates: &[Itemset]) -> CounterStats {
        match self.choices[h - 1] {
            CountingEngine::Tidset => self.tidset.batch_stats(h, candidates),
            CountingEngine::Scan => self.scan.batch_stats(h, candidates),
            CountingEngine::Bitset => self.bitset.batch_stats(h, candidates),
            CountingEngine::Auto => unreachable!("auto never selects itself"),
        }
    }

    /// Dispatch to the sharding strategy of the level's chosen engine:
    /// prefix-group-chunked for tidset/bitset levels (a group's cached
    /// prefix is never torn across workers), transaction-chunked for scan
    /// levels (a candidate-chunked scan would repeat the full pass per
    /// worker). Stats fold into this counter's own accumulator either way.
    fn count_batch_sharded(
        &mut self,
        h: usize,
        candidates: &[Itemset],
        threads: usize,
    ) -> Vec<u64> {
        match self.choices[h - 1] {
            CountingEngine::Scan => {
                let lv = self.view.level(h);
                crate::counting::scan_sharded(self, lv, h, candidates, threads)
            }
            _ => crate::counting::group_sharded(self, h, candidates, threads),
        }
    }

    /// Cached counting dispatch: tidset and bitset levels run their cached
    /// kernels against the caller's [`crate::CellCache`]; scan levels have
    /// no per-group prefix state to cache and use the plain
    /// transaction-chunked path. Cache keys include `h`, so the two cached
    /// kernels never see each other's entries even through one shared cache.
    fn count_batch_cached(
        &mut self,
        h: usize,
        candidates: &[Itemset],
        threads: usize,
        cache: &mut crate::cache::CellCache,
    ) -> Vec<u64> {
        match self.choices[h - 1] {
            CountingEngine::Tidset => crate::counting::cached_group_sharded(
                self,
                h,
                candidates,
                threads,
                cache,
                |c: &Self, h, chunk, shard| c.tidset.count_shard_cached(h, chunk, shard),
            ),
            CountingEngine::Bitset => crate::counting::cached_group_sharded(
                self,
                h,
                candidates,
                threads,
                cache,
                |c: &Self, h, chunk, shard| c.bitset.count_shard_cached(h, chunk, shard),
            ),
            _ => self.count_batch_sharded(h, candidates, threads),
        }
    }

    fn merge_stats(&mut self, delta: &CounterStats) {
        self.stats.merge(delta);
    }

    fn stats(&self) -> CounterStats {
        self.stats
    }

    fn engine_name(&self) -> &'static str {
        "auto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256pp};
    use crate::transaction::TransactionDb;
    use flipper_taxonomy::Taxonomy;

    /// Wide transactions over few leaves: dense at every level.
    fn dense_setup() -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::uniform(2, 2, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let rows: Vec<Vec<NodeId>> = (0..100)
            .map(|_| {
                let w = rng.gen_range(3..=4usize);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        (tax, TransactionDb::new(rows).unwrap())
    }

    /// Narrow transactions over many leaves: sparse at the leaf level.
    fn sparse_setup() -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::uniform(3, 4, 3).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let rows: Vec<Vec<NodeId>> = (0..400)
            .map(|_| {
                let w = rng.gen_range(1..=3usize);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        (tax, TransactionDb::new(rows).unwrap())
    }

    #[test]
    fn dense_levels_choose_bitset() {
        let (tax, db) = dense_setup();
        let view = MultiLevelView::build(&db, &tax);
        let c = AutoCounter::new(&view);
        // 4 leaves drawn 3-4 times per 100 txns: density far above 1/16.
        assert!(level_density(&view, 1) >= AUTO_BITSET_DENSITY);
        assert_eq!(c.chosen_engine(1), CountingEngine::Bitset);
        assert_eq!(c.chosen_engine(2), CountingEngine::Bitset);
    }

    #[test]
    fn sparse_large_levels_choose_tidset() {
        let (tax, db) = sparse_setup();
        let view = MultiLevelView::build(&db, &tax);
        let c = AutoCounter::new(&view);
        // 48 leaves over 400 narrow txns: leaf density ≪ 1/16, N > 256.
        assert!(level_density(&view, 3) < AUTO_BITSET_DENSITY);
        assert_eq!(c.chosen_engine(3), CountingEngine::Tidset);
    }

    #[test]
    fn tiny_sparse_databases_choose_scan() {
        // Singleton txns spread over 48 leaves: density 1/48 < 1/16 at the
        // leaf level, and N = 200 ≤ 256 → one grouped pass wins.
        let tax = Taxonomy::uniform(3, 4, 3).unwrap();
        let leaves = tax.leaves().to_vec();
        let rows: Vec<Vec<NodeId>> = (0..200).map(|i| vec![leaves[i % leaves.len()]]).collect();
        let db = TransactionDb::new(rows).unwrap();
        let view = MultiLevelView::build(&db, &tax);
        let c = AutoCounter::new(&view);
        assert!(level_density(&view, 3) < AUTO_BITSET_DENSITY);
        assert_eq!(c.chosen_engine(3), CountingEngine::Scan);
        // Level 1 of the same data: 3 roots, density 1/3 → bitset.
        assert_eq!(c.chosen_engine(1), CountingEngine::Bitset);
    }

    /// Auto agrees with every concrete engine on counts, at every level.
    #[test]
    fn auto_matches_concrete_engines() {
        for (tax, db) in [dense_setup(), sparse_setup()] {
            let view = MultiLevelView::build(&db, &tax);
            for h in 1..=tax.height() {
                let nodes = tax.nodes_at_level(h).unwrap();
                let mut cands = Vec::new();
                for i in 0..nodes.len() {
                    for j in (i + 1)..nodes.len().min(i + 12) {
                        cands.push(Itemset::pair(nodes[i], nodes[j]));
                    }
                }
                let mut auto = AutoCounter::new(&view);
                let got = auto.count_batch(h, &cands);
                for engine in CountingEngine::CONCRETE {
                    let mut c = engine.make(&view);
                    assert_eq!(
                        c.count_batch(h, &cands),
                        got,
                        "auto vs {} at level {h}",
                        c.engine_name()
                    );
                }
                assert_eq!(auto.stats().candidates_counted, cands.len() as u64);
            }
        }
    }

    #[test]
    fn scan_choice_accounts_db_scans() {
        // Force a scan level and check the logical-pass accounting flows
        // through AutoCounter's batch_stats.
        let tax = Taxonomy::uniform(3, 4, 3).unwrap();
        let leaves = tax.leaves().to_vec();
        let rows: Vec<Vec<NodeId>> = (0..200).map(|i| vec![leaves[i % leaves.len()]]).collect();
        let db = TransactionDb::new(rows).unwrap();
        let view = MultiLevelView::build(&db, &tax);
        let mut auto = AutoCounter::new(&view);
        assert_eq!(auto.chosen_engine(3), CountingEngine::Scan);
        let cands = vec![Itemset::pair(leaves[0], leaves[1])];
        auto.count_batch(3, &cands);
        assert_eq!(auto.stats().db_scans, 1);
        assert_eq!(auto.stats().candidates_counted, 1);
    }

    /// Sharded counting through AutoCounter matches sequential — counts and
    /// stats — on a level that chose the scan engine (exercising the
    /// transaction-chunked dispatch) as well as on bitset levels.
    #[test]
    fn auto_sharded_matches_sequential_on_scan_levels() {
        let tax = Taxonomy::uniform(3, 4, 3).unwrap();
        let leaves = tax.leaves().to_vec();
        let rows: Vec<Vec<NodeId>> = (0..200).map(|i| vec![leaves[i % leaves.len()]]).collect();
        let db = TransactionDb::new(rows).unwrap();
        let view = MultiLevelView::build(&db, &tax);
        let mut cands = Vec::new();
        for i in 0..leaves.len() {
            for j in (i + 1)..leaves.len() {
                cands.push(Itemset::pair(leaves[i], leaves[j]));
            }
        }
        for h in [1usize, 3] {
            let batch: Vec<Itemset> = if h == 3 {
                cands.clone()
            } else {
                let roots = tax.nodes_at_level(1).unwrap().to_vec();
                std::iter::repeat_n(Itemset::pair(roots[0], roots[1]), 100).collect()
            };
            let mut seq = AutoCounter::new(&view);
            let expect = seq.count_batch(h, &batch);
            for threads in [2usize, 5] {
                let mut par = AutoCounter::new(&view);
                let got = par.count_batch_sharded(h, &batch, threads);
                assert_eq!(got, expect, "level {h} threads {threads}");
                assert_eq!(par.stats(), seq.stats(), "level {h} threads {threads}");
            }
        }
    }

    #[test]
    fn density_is_fill_ratio() {
        // 4 txns, 2 items, each item in 2 txns → density 4/(2·4) = 0.5.
        let tax = Taxonomy::uniform(2, 1, 1).unwrap();
        let roots = tax.nodes_at_level(1).unwrap().to_vec();
        let db = TransactionDb::new(vec![
            vec![roots[0]],
            vec![roots[0]],
            vec![roots[1]],
            vec![roots[1]],
        ])
        .unwrap();
        let view = MultiLevelView::build(&db, &tax);
        assert!((level_density(&view, 1) - 0.5).abs() < 1e-12);
    }
}
