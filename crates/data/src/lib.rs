//! # flipper-data
//!
//! Transaction databases, multi-level taxonomy projections and support
//! counting for flipping-correlation mining (Barsky et al., PVLDB 5(4),
//! 2011).
//!
//! The mining algorithm evaluates `(h, k)`-itemsets: `k`-itemsets whose
//! items have been generalized to taxonomy level `h`. This crate supplies
//! everything below the algorithm:
//!
//! * [`Itemset`] — canonical sorted itemsets with Apriori joins;
//! * [`TransactionDb`] — validated, canonicalized transactions over leaves;
//! * [`MultiLevelView`] — the database projected to every abstraction level,
//!   with per-item supports and tid-lists;
//! * [`SupportCounter`] — batch support oracles: vertical
//!   [`TidsetCounter`], scan-based [`ScanCounter`], hybrid [`BitsetCounter`]
//!   and the density-driven per-level [`AutoCounter`];
//! * [`mod@exec`] — dependency-free scoped-thread sharding;
//!   [`SupportCounter::count_batch_sharded`] counts a batch over a worker
//!   pool with bit-identical counts and stats at every thread count;
//! * [`mod@cache`] — the budgeted cross-cell prefix cache and the
//!   session-level support cache behind
//!   [`SupportCounter::count_batch_cached`];
//! * [`mod@format`] — a text interchange format bundling taxonomy + data;
//! * [`stats`] — dataset statistics.
//!
//! ```
//! use flipper_taxonomy::{Taxonomy, RebalancePolicy};
//! use flipper_data::{TransactionDb, MultiLevelView, TidsetCounter, SupportCounter, Itemset};
//!
//! let tax = Taxonomy::from_edges(
//!     [("drinks", ""), ("food", ""), ("beer", "drinks"), ("bread", "food")],
//!     RebalancePolicy::RequireBalanced).unwrap();
//! let beer = tax.node_by_name("beer").unwrap();
//! let bread = tax.node_by_name("bread").unwrap();
//! let db = TransactionDb::new(vec![vec![beer, bread], vec![beer]]).unwrap();
//!
//! let view = MultiLevelView::build(&db, &tax);
//! let mut counter = TidsetCounter::new(&view);
//! let sup = counter.count_batch(2, &[Itemset::pair(beer, bread)]);
//! assert_eq!(sup, vec![1]);
//! ```

pub mod auto;
pub mod bitset;
pub mod cache;
mod counting;
pub mod exec;
pub mod format;
mod itemset;
mod projection;
/// Seedable PRNG, re-exported from the `flipper-rng` micro-crate under its
/// historical path so existing callers keep working unchanged.
pub use flipper_rng as rng;
pub mod stats;
pub mod tidset;
mod transaction;

pub use auto::AutoCounter;
pub use bitset::{Bitmap, BitsetCounter};
pub use cache::{
    CacheStats, CachedPrefix, CellCache, PrefixCache, SupportCache, DEFAULT_CACHE_BUDGET,
};
pub use counting::{
    naive_tidset_counts, prefix_groups, same_prefix_group, CounterStats, CountingEngine,
    ScanCounter, SupportCounter, TidsetCounter, MIN_SHARD_CANDIDATES,
};
pub use itemset::Itemset;
pub use projection::{LevelView, MultiLevelView, MultiLevelViewBuilder};
pub use transaction::{DataError, TransactionDb};
