//! Dense bitmap support counting — a third engine for high-density data.
//!
//! Tid-lists win when items are sparse; when an item appears in a large
//! fraction of transactions (common at shallow taxonomy levels, where a
//! category may cover half the database), a packed bitmap with word-wise
//! AND + popcount is both smaller and faster. [`BitsetCounter`] uses
//! bitmaps for dense items and falls back to tid-lists for sparse ones.

use crate::counting::prefix_groups;
use crate::itemset::Itemset;
use crate::projection::MultiLevelView;
use crate::tidset::{intersect_size, intersect_size_many};
use flipper_taxonomy::NodeId;
use std::collections::HashMap;

/// A fixed-width packed bitmap over transaction ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap over `len` transactions.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from a sorted tid-list.
    pub fn from_tids(tids: &[u32], len: usize) -> Self {
        let mut b = Bitmap::zeros(len);
        for &t in tids {
            b.set(t as usize);
        }
        b
    }

    /// Number of transactions covered (bit capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Popcount of the AND of all `maps` (must share the same length).
    pub fn and_count(maps: &[&Bitmap]) -> u64 {
        let Some(first) = maps.first() else { return 0 };
        debug_assert!(maps.iter().all(|m| m.len == first.len));
        let mut n = 0u64;
        for w in 0..first.words.len() {
            let mut acc = first.words[w];
            for m in &maps[1..] {
                acc &= m.words[w];
                if acc == 0 {
                    break;
                }
            }
            n += acc.count_ones() as u64;
        }
        n
    }

    /// Popcount of AND between a bitmap and a sorted tid-list (hybrid path).
    pub fn and_tids_count(&self, tids: &[u32]) -> u64 {
        tids.iter().filter(|&&t| self.get(t as usize)).count() as u64
    }

    /// Overwrite this bitmap with a copy of `other`, reusing the existing
    /// word allocation — the scratch-buffer primitive behind prefix-group
    /// counting.
    pub fn copy_from(&mut self, other: &Bitmap) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Word-wise `self &= other`.
    ///
    /// # Panics
    /// Panics when the bitmaps cover different transaction counts.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }
}

/// Hybrid dense/sparse counting engine.
///
/// Items whose support exceeds `density_threshold × N` get a bitmap;
/// everything else stays a tid-list. A candidate with at least one bitmap
/// member is counted by filtering the *sparsest* tid-list through the
/// bitmaps (or pure word-AND when all members are dense).
pub struct BitsetCounter<'v> {
    view: &'v MultiLevelView,
    /// Bitmaps per level (index `h-1`), for dense items only.
    bitmaps: Vec<HashMap<NodeId, Bitmap>>,
    stats: crate::counting::CounterStats,
}

impl<'v> BitsetCounter<'v> {
    /// Default density threshold: items covering ≥ 1/16 of transactions are
    /// promoted to bitmaps.
    pub const DEFAULT_DENSITY: f64 = 1.0 / 16.0;

    /// Build the hybrid counter with the default density threshold.
    pub fn new(view: &'v MultiLevelView) -> Self {
        Self::with_density(view, Self::DEFAULT_DENSITY)
    }

    /// Build with an explicit density threshold in `[0, 1]`. A threshold of
    /// 0 promotes every item; 1.0+ promotes none (degenerating to tid-lists).
    pub fn with_density(view: &'v MultiLevelView, density: f64) -> Self {
        Self::with_density_at_levels(view, density, None)
    }

    /// Build bitmaps only at the levels `h` where `level_mask[h - 1]` is
    /// true (`None` = every level). Levels left out of the mask fall back to
    /// pure tid-list counting; [`crate::AutoCounter`] uses this so a mostly
    /// sparse dataset does not pay bitmap construction for every level.
    pub fn with_density_at_levels(
        view: &'v MultiLevelView,
        density: f64,
        level_mask: Option<&[bool]>,
    ) -> Self {
        assert!(density >= 0.0, "density threshold must be non-negative");
        if let Some(mask) = level_mask {
            assert_eq!(mask.len(), view.height(), "one mask entry per level");
        }
        let n = view.num_transactions();
        let cutoff = (density * n as f64) as u64;
        let mut bitmaps = Vec::with_capacity(view.height());
        for h in 1..=view.height() {
            let mut per_level = HashMap::new();
            if level_mask.is_none_or(|m| m[h - 1]) {
                let lv = view.level(h);
                for &item in lv.present_items() {
                    if lv.item_support(item) >= cutoff.max(1) {
                        per_level.insert(item, Bitmap::from_tids(lv.tidset(item), n));
                    }
                }
            }
            bitmaps.push(per_level);
        }
        BitsetCounter {
            view,
            bitmaps,
            stats: Default::default(),
        }
    }

    /// How many items are bitmap-backed at level `h` (diagnostics).
    pub fn dense_items(&self, h: usize) -> usize {
        self.bitmaps[h - 1].len()
    }
}

impl crate::counting::SupportCounter for BitsetCounter<'_> {
    fn num_transactions(&self) -> u64 {
        self.view.num_transactions() as u64
    }

    fn item_support(&self, h: usize, item: NodeId) -> u64 {
        self.view.level(h).item_support(item)
    }

    fn present_items(&self, h: usize) -> &[NodeId] {
        self.view.level(h).present_items()
    }

    /// Prefix-group kernel, hybrid flavor: per group of candidates sharing
    /// a `(k−1)`-prefix, the prefix is materialized once — a word-wise AND
    /// into a reusable scratch bitmap when every prefix item is dense, or a
    /// filtered tid-list in reusable scratch otherwise (borrowed directly
    /// for `k = 2`) — then every member is answered by one AND-popcount /
    /// bitmap-filter / galloping intersection against its last item.
    /// Nothing allocates per candidate. `intersections` charges `k−2`
    /// combines per materialized prefix plus one per member.
    fn count_shard(
        &self,
        h: usize,
        candidates: &[Itemset],
    ) -> (Vec<u64>, crate::counting::CounterStats) {
        /// The group's shared prefix, in whichever representation its
        /// density mix produced.
        enum Prefix<'a> {
            Bits(&'a Bitmap),
            Tids(&'a [u32]),
        }
        let lv = self.view.level(h);
        let maps = &self.bitmaps[h - 1];
        let mut stats = crate::counting::CounterStats {
            candidates_counted: candidates.len() as u64,
            ..Default::default()
        };
        let mut counts = vec![0u64; candidates.len()];
        // Scratch reused across groups: the dense/sparse partition of the
        // current prefix and the two materialization targets.
        let mut dense: Vec<&Bitmap> = Vec::new();
        let mut sparse: Vec<&[u32]> = Vec::new();
        let mut prefix_bm = Bitmap::zeros(0);
        let mut prefix_tids: Vec<u32> = Vec::new();
        for group in prefix_groups(candidates) {
            let items = candidates[group.start].items();
            let k = items.len();
            if k == 0 {
                continue; // empty itemsets count 0 transactions
            }
            if k == 1 {
                for i in group {
                    counts[i] = lv.item_support(candidates[i].items()[0]);
                }
                continue;
            }
            dense.clear();
            sparse.clear();
            for &it in &items[..k - 1] {
                match maps.get(&it) {
                    Some(m) => dense.push(m),
                    None => sparse.push(lv.tidset(it)),
                }
            }
            // A singleton k ≥ 3 group has nothing to reuse: skip the prefix
            // materialization (a scratch-bitmap copy / filtered list would
            // double the memory traffic) and answer it with one fused
            // early-exit pass over all k items. Same `k−1` intersections
            // charge, zero reuses — stats stay group-structure-invariant.
            if k >= 3 && group.len() == 1 {
                stats.intersections += (k - 1) as u64;
                let last = items[k - 1];
                match maps.get(&last) {
                    Some(m) => dense.push(m),
                    None => sparse.push(lv.tidset(last)),
                }
                counts[group.start] = match (dense.is_empty(), sparse.is_empty()) {
                    (true, _) => intersect_size_many(&sparse),
                    (false, true) => Bitmap::and_count(&dense),
                    (false, false) => {
                        // Filter the smallest sparse list through everything.
                        sparse.sort_by_key(|s| s.len());
                        sparse[0]
                            .iter()
                            .filter(|&&t| {
                                dense.iter().all(|m| m.get(t as usize))
                                    && sparse[1..].iter().all(|s| s.binary_search(&t).is_ok())
                            })
                            .count() as u64
                    }
                };
                continue;
            }
            let prefix = if k == 2 {
                match (dense.first(), sparse.first()) {
                    (Some(m), _) => Prefix::Bits(m),
                    (None, Some(t)) => Prefix::Tids(t),
                    (None, None) => unreachable!("k = 2 has exactly one prefix item"),
                }
            } else {
                stats.prefix_reuses += (group.len() - 1) as u64;
                stats.intersections += (k - 2) as u64;
                if sparse.is_empty() {
                    prefix_bm.copy_from(dense[0]);
                    for m in &dense[1..] {
                        prefix_bm.and_assign(m);
                    }
                    Prefix::Bits(&prefix_bm)
                } else {
                    // Filter the smallest sparse list through everything.
                    sparse.sort_by_key(|s| s.len());
                    let base = sparse[0];
                    prefix_tids.clear();
                    prefix_tids.extend(base.iter().copied().filter(|&t| {
                        dense.iter().all(|m| m.get(t as usize))
                            && sparse[1..].iter().all(|s| s.binary_search(&t).is_ok())
                    }));
                    Prefix::Tids(&prefix_tids)
                }
            };
            for i in group {
                stats.intersections += 1;
                let last = *candidates[i].items().last().expect("k >= 2");
                counts[i] = match (&prefix, maps.get(&last)) {
                    (Prefix::Bits(p), Some(m)) => Bitmap::and_count(&[p, m]),
                    (Prefix::Bits(p), None) => p.and_tids_count(lv.tidset(last)),
                    (Prefix::Tids(p), Some(m)) => m.and_tids_count(p),
                    (Prefix::Tids(p), None) => intersect_size(p, lv.tidset(last)),
                };
            }
        }
        (counts, stats)
    }

    fn merge_stats(&mut self, delta: &crate::counting::CounterStats) {
        self.stats.merge(delta);
    }

    fn stats(&self) -> crate::counting::CounterStats {
        self.stats
    }

    fn engine_name(&self) -> &'static str {
        "bitset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::{SupportCounter, TidsetCounter};
    use crate::rng::{Rng, Xoshiro256pp};
    use crate::transaction::TransactionDb;
    use flipper_taxonomy::Taxonomy;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_bounds_checked() {
        let mut b = Bitmap::zeros(10);
        b.set(10);
    }

    #[test]
    fn bitmap_from_tids_roundtrip() {
        let tids = vec![1u32, 5, 63, 64, 99];
        let b = Bitmap::from_tids(&tids, 100);
        assert_eq!(b.count_ones(), 5);
        for &t in &tids {
            assert!(b.get(t as usize));
        }
    }

    #[test]
    fn and_count_matches_manual() {
        let a = Bitmap::from_tids(&[1, 2, 3, 70], 100);
        let b = Bitmap::from_tids(&[2, 3, 70, 99], 100);
        let c = Bitmap::from_tids(&[3, 70], 100);
        assert_eq!(Bitmap::and_count(&[&a, &b]), 3);
        assert_eq!(Bitmap::and_count(&[&a, &b, &c]), 2);
        assert_eq!(Bitmap::and_count(&[]), 0);
        assert_eq!(Bitmap::and_count(&[&a]), 4);
    }

    #[test]
    fn and_tids_count_matches() {
        let a = Bitmap::from_tids(&[1, 2, 3, 70], 100);
        assert_eq!(a.and_tids_count(&[2, 50, 70]), 2);
        assert_eq!(a.and_tids_count(&[]), 0);
    }

    fn random_setup(seed: u64) -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::uniform(3, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let rows: Vec<Vec<NodeId>> = (0..200)
            .map(|_| {
                let w = rng.gen_range(1..=6);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        (tax, TransactionDb::new(rows).unwrap())
    }

    /// The hybrid engine agrees with the tid-list engine for every
    /// density threshold (all-dense, mixed, all-sparse paths).
    ///
    /// Ported from a 24-case proptest: a meta-RNG draws the (seed, density)
    /// pairs the strategy `(0u64..1000, 0.0f64..1.2)` used to sample.
    #[test]
    fn bitset_agrees_with_tidset() {
        let mut meta = Xoshiro256pp::seed_from_u64(0xB175E7);
        for _ in 0..24 {
            let seed = meta.gen_range(0..1000u64);
            let density = meta.gen_range(0.0..1.2);
            let (tax, db) = random_setup(seed);
            let view = MultiLevelView::build(&db, &tax);
            let mut tc = TidsetCounter::new(&view);
            let mut bc = BitsetCounter::with_density(&view, density);
            for h in 1..=2 {
                let nodes = tax.nodes_at_level(h).unwrap();
                let mut cands = Vec::new();
                for i in 0..nodes.len() {
                    for j in (i + 1)..nodes.len() {
                        cands.push(Itemset::pair(nodes[i], nodes[j]));
                    }
                }
                // A triple too, exercising >2-way intersections.
                if nodes.len() >= 3 {
                    cands.push(Itemset::new(vec![nodes[0], nodes[1], nodes[2]]));
                }
                assert_eq!(
                    tc.count_batch(h, &cands),
                    bc.count_batch(h, &cands),
                    "engines disagree (seed={seed}, density={density})"
                );
            }
        }
    }

    #[test]
    fn density_zero_promotes_everything() {
        let (tax, db) = random_setup(1);
        let view = MultiLevelView::build(&db, &tax);
        let bc = BitsetCounter::with_density(&view, 0.0);
        assert_eq!(bc.dense_items(1), view.level(1).present_items().len());
        let bc = BitsetCounter::with_density(&view, 2.0);
        assert_eq!(bc.dense_items(1), 0);
    }

    #[test]
    fn engine_name_and_stats() {
        let (tax, db) = random_setup(2);
        let view = MultiLevelView::build(&db, &tax);
        let mut bc = BitsetCounter::new(&view);
        assert_eq!(bc.engine_name(), "bitset");
        let nodes = tax.nodes_at_level(1).unwrap();
        bc.count_batch(1, &[Itemset::pair(nodes[0], nodes[1])]);
        assert_eq!(bc.stats().candidates_counted, 1);
        assert_eq!(bc.num_transactions(), 200);
    }
}
