//! Dense bitmap support counting — a third engine for high-density data.
//!
//! Tid-lists win when items are sparse; when an item appears in a large
//! fraction of transactions (common at shallow taxonomy levels, where a
//! category may cover half the database), a packed bitmap with word-wise
//! AND + popcount is both smaller and faster. [`BitsetCounter`] uses
//! bitmaps for dense items and falls back to tid-lists for sparse ones.

use crate::cache::{CachedPrefix, CellCache, PrefixCache};
use crate::counting::{cached_group_sharded, prefix_groups};
use crate::itemset::Itemset;
use crate::projection::MultiLevelView;
use crate::tidset::{intersect_into, intersect_size, intersect_size_many};
use flipper_taxonomy::NodeId;
use std::collections::HashMap;

/// A fixed-width packed bitmap over transaction ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap over `len` transactions.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from a sorted tid-list.
    pub fn from_tids(tids: &[u32], len: usize) -> Self {
        let mut b = Bitmap::zeros(len);
        for &t in tids {
            b.set(t as usize);
        }
        b
    }

    /// Number of transactions covered (bit capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Popcount of the AND of all `maps` (must share the same length).
    ///
    /// The two-map case — the prefix-kernel hot path — and the general fold
    /// both run in fixed-width 4×u64 blocks with a scalar tail and no
    /// data-dependent early exit, so LLVM autovectorizes the AND+popcount
    /// without any explicit SIMD.
    pub fn and_count(maps: &[&Bitmap]) -> u64 {
        match maps {
            [] => 0,
            [a] => a.count_ones(),
            [a, b] => {
                debug_assert_eq!(a.len, b.len);
                let mut n = 0u64;
                let mut ca = a.words.chunks_exact(4);
                let mut cb = b.words.chunks_exact(4);
                for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
                    n += (wa[0] & wb[0]).count_ones() as u64
                        + (wa[1] & wb[1]).count_ones() as u64
                        + (wa[2] & wb[2]).count_ones() as u64
                        + (wa[3] & wb[3]).count_ones() as u64;
                }
                for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
                    n += (x & y).count_ones() as u64;
                }
                n
            }
            maps => {
                let first = maps[0];
                debug_assert!(maps.iter().all(|m| m.len == first.len));
                let words = first.words.len();
                let mut n = 0u64;
                let mut w = 0;
                while w + 4 <= words {
                    let mut acc = [
                        first.words[w],
                        first.words[w + 1],
                        first.words[w + 2],
                        first.words[w + 3],
                    ];
                    for m in &maps[1..] {
                        acc[0] &= m.words[w];
                        acc[1] &= m.words[w + 1];
                        acc[2] &= m.words[w + 2];
                        acc[3] &= m.words[w + 3];
                    }
                    n += acc[0].count_ones() as u64
                        + acc[1].count_ones() as u64
                        + acc[2].count_ones() as u64
                        + acc[3].count_ones() as u64;
                    w += 4;
                }
                while w < words {
                    let mut acc = first.words[w];
                    for m in &maps[1..] {
                        acc &= m.words[w];
                    }
                    n += acc.count_ones() as u64;
                    w += 1;
                }
                n
            }
        }
    }

    /// Popcount of AND between a bitmap and a sorted tid-list (hybrid path).
    ///
    /// Probes four tids per iteration with branchless bit tests; the one
    /// up-front bounds check on the largest tid replaces a per-probe assert.
    pub fn and_tids_count(&self, tids: &[u32]) -> u64 {
        if let Some(&max) = tids.last() {
            assert!(
                (max as usize) < self.len,
                "bit {max} out of range {}",
                self.len
            );
        }
        let bit = |t: u32| (self.words[t as usize / 64] >> (t % 64)) & 1;
        let mut n = 0u64;
        let mut chunks = tids.chunks_exact(4);
        for c in chunks.by_ref() {
            n += bit(c[0]) + bit(c[1]) + bit(c[2]) + bit(c[3]);
        }
        for &t in chunks.remainder() {
            n += bit(t);
        }
        n
    }

    /// Overwrite this bitmap with a copy of `other`, reusing the existing
    /// word allocation — the scratch-buffer primitive behind prefix-group
    /// counting.
    pub fn copy_from(&mut self, other: &Bitmap) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Word-wise `self &= other`.
    ///
    /// # Panics
    /// Panics when the bitmaps cover different transaction counts.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }
}

/// Hybrid dense/sparse counting engine.
///
/// Items whose support exceeds `density_threshold × N` get a bitmap;
/// everything else stays a tid-list. A candidate with at least one bitmap
/// member is counted by filtering the *sparsest* tid-list through the
/// bitmaps (or pure word-AND when all members are dense).
pub struct BitsetCounter<'v> {
    view: &'v MultiLevelView,
    /// Bitmaps per level (index `h-1`), for dense items only.
    bitmaps: Vec<HashMap<NodeId, Bitmap>>,
    stats: crate::counting::CounterStats,
}

impl<'v> BitsetCounter<'v> {
    /// Default density threshold: items covering ≥ 1/16 of transactions are
    /// promoted to bitmaps.
    pub const DEFAULT_DENSITY: f64 = 1.0 / 16.0;

    /// Build the hybrid counter with the default density threshold.
    pub fn new(view: &'v MultiLevelView) -> Self {
        Self::with_density(view, Self::DEFAULT_DENSITY)
    }

    /// Build with an explicit density threshold in `[0, 1]`. A threshold of
    /// 0 promotes every item; 1.0+ promotes none (degenerating to tid-lists).
    pub fn with_density(view: &'v MultiLevelView, density: f64) -> Self {
        Self::with_density_at_levels(view, density, None)
    }

    /// Build bitmaps only at the levels `h` where `level_mask[h - 1]` is
    /// true (`None` = every level). Levels left out of the mask fall back to
    /// pure tid-list counting; [`crate::AutoCounter`] uses this so a mostly
    /// sparse dataset does not pay bitmap construction for every level.
    pub fn with_density_at_levels(
        view: &'v MultiLevelView,
        density: f64,
        level_mask: Option<&[bool]>,
    ) -> Self {
        assert!(density >= 0.0, "density threshold must be non-negative");
        if let Some(mask) = level_mask {
            assert_eq!(mask.len(), view.height(), "one mask entry per level");
        }
        let n = view.num_transactions();
        let cutoff = (density * n as f64) as u64;
        let mut bitmaps = Vec::with_capacity(view.height());
        for h in 1..=view.height() {
            let mut per_level = HashMap::new();
            if level_mask.is_none_or(|m| m[h - 1]) {
                let lv = view.level(h);
                for &item in lv.present_items() {
                    if lv.item_support(item) >= cutoff.max(1) {
                        per_level.insert(item, Bitmap::from_tids(lv.tidset(item), n));
                    }
                }
            }
            bitmaps.push(per_level);
        }
        BitsetCounter {
            view,
            bitmaps,
            stats: Default::default(),
        }
    }

    /// How many items are bitmap-backed at level `h` (diagnostics).
    pub fn dense_items(&self, h: usize) -> usize {
        self.bitmaps[h - 1].len()
    }

    /// [`crate::SupportCounter::count_shard`] with a cross-cell prefix
    /// cache, hybrid flavor: a multi-member `k ≥ 3` group resolves its
    /// prefix by exact hit (copy the cached bitmap/tid-list), parent hit
    /// (`k ≥ 4`: one combine of the cached `(k−2)`-prefix with the last
    /// prefix item, across all four dense/sparse pairings), or the full
    /// rebuild, which caches its result for the next batch.
    ///
    /// The uncached kernel charges every multi-member group `k−2`
    /// intersections plus one per member *unconditionally* (no early exit
    /// on empty prefixes), so the cached kernel charges exactly the same
    /// regardless of which path resolved the prefix — counts and stats are
    /// bit-identical to the uncached kernel at every budget and thread
    /// count. Singleton `k ≥ 3` groups keep the fused early-exit path
    /// untouched (nothing to cache), and `k = 2` prefixes are borrowed
    /// straight from the view as before.
    pub fn count_shard_cached(
        &self,
        h: usize,
        candidates: &[Itemset],
        cache: &mut PrefixCache,
    ) -> (Vec<u64>, crate::counting::CounterStats) {
        use crate::counting::SupportCounter as _;
        if !cache.enabled() {
            return self.count_shard(h, candidates);
        }
        /// The group's shared prefix, in whichever representation resolved.
        enum Prefix<'a> {
            Bits(&'a Bitmap),
            Tids(&'a [u32]),
        }
        let lv = self.view.level(h);
        let maps = &self.bitmaps[h - 1];
        let mut stats = crate::counting::CounterStats {
            candidates_counted: candidates.len() as u64,
            ..Default::default()
        };
        let mut counts = vec![0u64; candidates.len()];
        let mut dense: Vec<&Bitmap> = Vec::new();
        let mut sparse: Vec<&[u32]> = Vec::new();
        let mut prefix_bm = Bitmap::zeros(0);
        let mut prefix_tids: Vec<u32> = Vec::new();
        for group in prefix_groups(candidates) {
            let items = candidates[group.start].items();
            let k = items.len();
            if k == 0 {
                continue; // empty itemsets count 0 transactions
            }
            if k == 1 {
                for i in group {
                    counts[i] = lv.item_support(candidates[i].items()[0]);
                }
                continue;
            }
            if k >= 3 && group.len() == 1 {
                // Fused singleton path, identical to the uncached kernel.
                stats.intersections += (k - 1) as u64;
                dense.clear();
                sparse.clear();
                for &it in items {
                    match maps.get(&it) {
                        Some(m) => dense.push(m),
                        None => sparse.push(lv.tidset(it)),
                    }
                }
                counts[group.start] = match (dense.is_empty(), sparse.is_empty()) {
                    (true, _) => intersect_size_many(&sparse),
                    (false, true) => Bitmap::and_count(&dense),
                    (false, false) => {
                        sparse.sort_by_key(|s| s.len());
                        sparse[0]
                            .iter()
                            .filter(|&&t| {
                                dense.iter().all(|m| m.get(t as usize))
                                    && sparse[1..].iter().all(|s| s.binary_search(&t).is_ok())
                            })
                            .count() as u64
                    }
                };
                continue;
            }
            let prefix = if k == 2 {
                match maps.get(&items[0]) {
                    Some(m) => Prefix::Bits(m),
                    None => Prefix::Tids(lv.tidset(items[0])),
                }
            } else {
                stats.prefix_reuses += (group.len() - 1) as u64;
                stats.intersections += (k - 2) as u64;
                let prefix_items = &items[..k - 1];
                // `None` = unresolved, `Some(true)` = bitmap scratch,
                // `Some(false)` = tid-list scratch.
                let mut repr = match cache.lookup(h, prefix_items) {
                    Some(CachedPrefix::Bits(b)) => {
                        prefix_bm.copy_from(b);
                        Some(true)
                    }
                    Some(CachedPrefix::Tids(t)) => {
                        prefix_tids.clear();
                        prefix_tids.extend_from_slice(t);
                        Some(false)
                    }
                    None => None,
                };
                if repr.is_some() {
                    cache.stats_mut().exact_hits += 1;
                } else if k >= 4 {
                    // Parent hit: combine the cached (k−2)-prefix with the
                    // last prefix item, whatever the two representations.
                    let bridge = items[k - 2];
                    repr = match (cache.lookup(h, &items[..k - 2]), maps.get(&bridge)) {
                        (Some(CachedPrefix::Bits(p)), Some(m)) => {
                            prefix_bm.copy_from(p);
                            prefix_bm.and_assign(m);
                            Some(true)
                        }
                        (Some(CachedPrefix::Bits(p)), None) => {
                            prefix_tids.clear();
                            prefix_tids.extend(
                                lv.tidset(bridge)
                                    .iter()
                                    .copied()
                                    .filter(|&t| p.get(t as usize)),
                            );
                            Some(false)
                        }
                        (Some(CachedPrefix::Tids(p)), Some(m)) => {
                            prefix_tids.clear();
                            prefix_tids.extend(p.iter().copied().filter(|&t| m.get(t as usize)));
                            Some(false)
                        }
                        (Some(CachedPrefix::Tids(p)), None) => {
                            intersect_into(p, lv.tidset(bridge), &mut prefix_tids);
                            Some(false)
                        }
                        (None, _) => None,
                    };
                    if let Some(bits) = repr {
                        cache.stats_mut().parent_hits += 1;
                        let value = if bits {
                            CachedPrefix::Bits(prefix_bm.clone())
                        } else {
                            CachedPrefix::Tids(prefix_tids.clone())
                        };
                        cache.insert(h, prefix_items, value);
                    }
                }
                match repr {
                    Some(true) => Prefix::Bits(&prefix_bm),
                    Some(false) => Prefix::Tids(&prefix_tids),
                    None => {
                        // Full rebuild, exactly like the uncached kernel —
                        // then cache the result for the next batch.
                        dense.clear();
                        sparse.clear();
                        for &it in prefix_items {
                            match maps.get(&it) {
                                Some(m) => dense.push(m),
                                None => sparse.push(lv.tidset(it)),
                            }
                        }
                        if sparse.is_empty() {
                            prefix_bm.copy_from(dense[0]);
                            for m in &dense[1..] {
                                prefix_bm.and_assign(m);
                            }
                            cache.insert(h, prefix_items, CachedPrefix::Bits(prefix_bm.clone()));
                            Prefix::Bits(&prefix_bm)
                        } else {
                            sparse.sort_by_key(|s| s.len());
                            let base = sparse[0];
                            prefix_tids.clear();
                            prefix_tids.extend(base.iter().copied().filter(|&t| {
                                dense.iter().all(|m| m.get(t as usize))
                                    && sparse[1..].iter().all(|s| s.binary_search(&t).is_ok())
                            }));
                            cache.insert(h, prefix_items, CachedPrefix::Tids(prefix_tids.clone()));
                            Prefix::Tids(&prefix_tids)
                        }
                    }
                }
            };
            for i in group {
                stats.intersections += 1;
                // lint:allow(panic-hygiene) group members are k >= 2 itemsets by the prefix-split precondition
                let last = *candidates[i].items().last().expect("k >= 2");
                counts[i] = match (&prefix, maps.get(&last)) {
                    (Prefix::Bits(p), Some(m)) => Bitmap::and_count(&[p, m]),
                    (Prefix::Bits(p), None) => p.and_tids_count(lv.tidset(last)),
                    (Prefix::Tids(p), Some(m)) => m.and_tids_count(p),
                    (Prefix::Tids(p), None) => intersect_size(p, lv.tidset(last)),
                };
            }
        }
        (counts, stats)
    }
}

impl crate::counting::SupportCounter for BitsetCounter<'_> {
    fn num_transactions(&self) -> u64 {
        self.view.num_transactions() as u64
    }

    fn item_support(&self, h: usize, item: NodeId) -> u64 {
        self.view.level(h).item_support(item)
    }

    fn present_items(&self, h: usize) -> &[NodeId] {
        self.view.level(h).present_items()
    }

    /// Prefix-group kernel, hybrid flavor: per group of candidates sharing
    /// a `(k−1)`-prefix, the prefix is materialized once — a word-wise AND
    /// into a reusable scratch bitmap when every prefix item is dense, or a
    /// filtered tid-list in reusable scratch otherwise (borrowed directly
    /// for `k = 2`) — then every member is answered by one AND-popcount /
    /// bitmap-filter / galloping intersection against its last item.
    /// Nothing allocates per candidate. `intersections` charges `k−2`
    /// combines per materialized prefix plus one per member.
    fn count_shard(
        &self,
        h: usize,
        candidates: &[Itemset],
    ) -> (Vec<u64>, crate::counting::CounterStats) {
        /// The group's shared prefix, in whichever representation its
        /// density mix produced.
        enum Prefix<'a> {
            Bits(&'a Bitmap),
            Tids(&'a [u32]),
        }
        let lv = self.view.level(h);
        let maps = &self.bitmaps[h - 1];
        let mut stats = crate::counting::CounterStats {
            candidates_counted: candidates.len() as u64,
            ..Default::default()
        };
        let mut counts = vec![0u64; candidates.len()];
        // Scratch reused across groups: the dense/sparse partition of the
        // current prefix and the two materialization targets.
        let mut dense: Vec<&Bitmap> = Vec::new();
        let mut sparse: Vec<&[u32]> = Vec::new();
        let mut prefix_bm = Bitmap::zeros(0);
        let mut prefix_tids: Vec<u32> = Vec::new();
        for group in prefix_groups(candidates) {
            let items = candidates[group.start].items();
            let k = items.len();
            if k == 0 {
                continue; // empty itemsets count 0 transactions
            }
            if k == 1 {
                for i in group {
                    counts[i] = lv.item_support(candidates[i].items()[0]);
                }
                continue;
            }
            dense.clear();
            sparse.clear();
            for &it in &items[..k - 1] {
                match maps.get(&it) {
                    Some(m) => dense.push(m),
                    None => sparse.push(lv.tidset(it)),
                }
            }
            // A singleton k ≥ 3 group has nothing to reuse: skip the prefix
            // materialization (a scratch-bitmap copy / filtered list would
            // double the memory traffic) and answer it with one fused
            // early-exit pass over all k items. Same `k−1` intersections
            // charge, zero reuses — stats stay group-structure-invariant.
            if k >= 3 && group.len() == 1 {
                stats.intersections += (k - 1) as u64;
                let last = items[k - 1];
                match maps.get(&last) {
                    Some(m) => dense.push(m),
                    None => sparse.push(lv.tidset(last)),
                }
                counts[group.start] = match (dense.is_empty(), sparse.is_empty()) {
                    (true, _) => intersect_size_many(&sparse),
                    (false, true) => Bitmap::and_count(&dense),
                    (false, false) => {
                        // Filter the smallest sparse list through everything.
                        sparse.sort_by_key(|s| s.len());
                        sparse[0]
                            .iter()
                            .filter(|&&t| {
                                dense.iter().all(|m| m.get(t as usize))
                                    && sparse[1..].iter().all(|s| s.binary_search(&t).is_ok())
                            })
                            .count() as u64
                    }
                };
                continue;
            }
            let prefix = if k == 2 {
                match (dense.first(), sparse.first()) {
                    (Some(m), _) => Prefix::Bits(m),
                    (None, Some(t)) => Prefix::Tids(t),
                    (None, None) => unreachable!("k = 2 has exactly one prefix item"),
                }
            } else {
                stats.prefix_reuses += (group.len() - 1) as u64;
                stats.intersections += (k - 2) as u64;
                if sparse.is_empty() {
                    prefix_bm.copy_from(dense[0]);
                    for m in &dense[1..] {
                        prefix_bm.and_assign(m);
                    }
                    Prefix::Bits(&prefix_bm)
                } else {
                    // Filter the smallest sparse list through everything.
                    sparse.sort_by_key(|s| s.len());
                    let base = sparse[0];
                    prefix_tids.clear();
                    prefix_tids.extend(base.iter().copied().filter(|&t| {
                        dense.iter().all(|m| m.get(t as usize))
                            && sparse[1..].iter().all(|s| s.binary_search(&t).is_ok())
                    }));
                    Prefix::Tids(&prefix_tids)
                }
            };
            for i in group {
                stats.intersections += 1;
                // lint:allow(panic-hygiene) group members are k >= 2 itemsets by the prefix-split precondition
                let last = *candidates[i].items().last().expect("k >= 2");
                counts[i] = match (&prefix, maps.get(&last)) {
                    (Prefix::Bits(p), Some(m)) => Bitmap::and_count(&[p, m]),
                    (Prefix::Bits(p), None) => p.and_tids_count(lv.tidset(last)),
                    (Prefix::Tids(p), Some(m)) => m.and_tids_count(p),
                    (Prefix::Tids(p), None) => intersect_size(p, lv.tidset(last)),
                };
            }
        }
        (counts, stats)
    }

    fn count_batch_cached(
        &mut self,
        h: usize,
        candidates: &[Itemset],
        threads: usize,
        cache: &mut CellCache,
    ) -> Vec<u64> {
        cached_group_sharded(
            self,
            h,
            candidates,
            threads,
            cache,
            |c: &Self, h, chunk, shard| c.count_shard_cached(h, chunk, shard),
        )
    }

    fn merge_stats(&mut self, delta: &crate::counting::CounterStats) {
        self.stats.merge(delta);
    }

    fn stats(&self) -> crate::counting::CounterStats {
        self.stats
    }

    fn engine_name(&self) -> &'static str {
        "bitset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::{SupportCounter, TidsetCounter};
    use crate::rng::{Rng, Xoshiro256pp};
    use crate::transaction::TransactionDb;
    use flipper_taxonomy::Taxonomy;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_bounds_checked() {
        let mut b = Bitmap::zeros(10);
        b.set(10);
    }

    #[test]
    fn bitmap_from_tids_roundtrip() {
        let tids = vec![1u32, 5, 63, 64, 99];
        let b = Bitmap::from_tids(&tids, 100);
        assert_eq!(b.count_ones(), 5);
        for &t in &tids {
            assert!(b.get(t as usize));
        }
    }

    #[test]
    fn and_count_matches_manual() {
        let a = Bitmap::from_tids(&[1, 2, 3, 70], 100);
        let b = Bitmap::from_tids(&[2, 3, 70, 99], 100);
        let c = Bitmap::from_tids(&[3, 70], 100);
        assert_eq!(Bitmap::and_count(&[&a, &b]), 3);
        assert_eq!(Bitmap::and_count(&[&a, &b, &c]), 2);
        assert_eq!(Bitmap::and_count(&[]), 0);
        assert_eq!(Bitmap::and_count(&[&a]), 4);
    }

    #[test]
    fn and_tids_count_matches() {
        let a = Bitmap::from_tids(&[1, 2, 3, 70], 100);
        assert_eq!(a.and_tids_count(&[2, 50, 70]), 2);
        assert_eq!(a.and_tids_count(&[]), 0);
    }

    fn random_setup(seed: u64) -> (Taxonomy, TransactionDb) {
        let tax = Taxonomy::uniform(3, 3, 2).unwrap();
        let leaves = tax.leaves().to_vec();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let rows: Vec<Vec<NodeId>> = (0..200)
            .map(|_| {
                let w = rng.gen_range(1..=6);
                (0..w)
                    .map(|_| leaves[rng.gen_range(0..leaves.len())])
                    .collect()
            })
            .collect();
        (tax, TransactionDb::new(rows).unwrap())
    }

    /// The hybrid engine agrees with the tid-list engine for every
    /// density threshold (all-dense, mixed, all-sparse paths).
    ///
    /// Ported from a 24-case proptest: a meta-RNG draws the (seed, density)
    /// pairs the strategy `(0u64..1000, 0.0f64..1.2)` used to sample.
    #[test]
    fn bitset_agrees_with_tidset() {
        let mut meta = Xoshiro256pp::seed_from_u64(0xB175E7);
        for _ in 0..24 {
            let seed = meta.gen_range(0..1000u64);
            let density = meta.gen_range(0.0..1.2);
            let (tax, db) = random_setup(seed);
            let view = MultiLevelView::build(&db, &tax);
            let mut tc = TidsetCounter::new(&view);
            let mut bc = BitsetCounter::with_density(&view, density);
            for h in 1..=2 {
                let nodes = tax.nodes_at_level(h).unwrap();
                let mut cands = Vec::new();
                for i in 0..nodes.len() {
                    for j in (i + 1)..nodes.len() {
                        cands.push(Itemset::pair(nodes[i], nodes[j]));
                    }
                }
                // A triple too, exercising >2-way intersections.
                if nodes.len() >= 3 {
                    cands.push(Itemset::new(vec![nodes[0], nodes[1], nodes[2]]));
                }
                assert_eq!(
                    tc.count_batch(h, &cands),
                    bc.count_batch(h, &cands),
                    "engines disagree (seed={seed}, density={density})"
                );
            }
        }
    }

    #[test]
    fn density_zero_promotes_everything() {
        let (tax, db) = random_setup(1);
        let view = MultiLevelView::build(&db, &tax);
        let bc = BitsetCounter::with_density(&view, 0.0);
        assert_eq!(bc.dense_items(1), view.level(1).present_items().len());
        let bc = BitsetCounter::with_density(&view, 2.0);
        assert_eq!(bc.dense_items(1), 0);
    }

    #[test]
    fn engine_name_and_stats() {
        let (tax, db) = random_setup(2);
        let view = MultiLevelView::build(&db, &tax);
        let mut bc = BitsetCounter::new(&view);
        assert_eq!(bc.engine_name(), "bitset");
        let nodes = tax.nodes_at_level(1).unwrap();
        bc.count_batch(1, &[Itemset::pair(nodes[0], nodes[1])]);
        assert_eq!(bc.stats().candidates_counted, 1);
        assert_eq!(bc.num_transactions(), 200);
    }
}
