//! A plain-text dataset format bundling a taxonomy and its transactions.
//!
//! ```text
//! # comments and blank lines are ignored
//! [taxonomy]
//! drinks
//! beer<TAB>drinks
//! canned beer<TAB>beer
//! [transactions]
//! canned beer<TAB>pretzels
//! ```
//!
//! The `[taxonomy]` section lists `child\tparent` pairs (a line with no tab
//! declares a level-1 category). Parents must appear before children. The
//! `[transactions]` section lists one transaction per line, items separated
//! by tabs. This is the interchange format of the `flipper` CLI.

use crate::transaction::TransactionDb;
use flipper_taxonomy::{NodeId, RebalancePolicy, Taxonomy, TaxonomyBuilder};
use std::io::{BufRead, Read, Write};

/// Errors from parsing or writing the dataset format.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the text, with a 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Taxonomy construction failed.
    Taxonomy(flipper_taxonomy::TaxonomyError),
    /// Database construction failed.
    Data(crate::transaction::DataError),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::Parse { line, message } => write!(f, "line {line}: {message}"),
            FormatError::Taxonomy(e) => write!(f, "taxonomy error: {e}"),
            FormatError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

impl From<flipper_taxonomy::TaxonomyError> for FormatError {
    fn from(e: flipper_taxonomy::TaxonomyError) -> Self {
        FormatError::Taxonomy(e)
    }
}

impl From<crate::transaction::DataError> for FormatError {
    fn from(e: crate::transaction::DataError) -> Self {
        FormatError::Data(e)
    }
}

/// A parsed dataset: the taxonomy plus the transactions over its leaves.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The (balanced) taxonomy.
    pub taxonomy: Taxonomy,
    /// The transactions.
    pub db: TransactionDb,
}

/// Parse a dataset from a reader. Unbalanced taxonomies are repaired with
/// `policy` (the CLI default is [`RebalancePolicy::LeafCopy`], matching the
/// paper's experiments).
pub fn read_dataset<R: BufRead>(
    mut reader: R,
    policy: RebalancePolicy,
) -> Result<Dataset, FormatError> {
    // The classic format mix-up: an FBIN binary dataset (see the
    // `flipper-store` crate) handed to the text parser. Sniff the magic
    // bytes before touching lines — binary content would otherwise surface
    // as a baffling line-1 parse or UTF-8 error. A single `fill_buf` may
    // legally return fewer than 4 bytes, so read the prefix explicitly and
    // chain it back in front of the remaining stream.
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if prefix[..filled] == *b"FBIN" {
        return Err(FormatError::Parse {
            line: 1,
            message: "this looks like an FBIN binary dataset (magic bytes \"FBIN\"), \
                      not the text format; read it with the flipper-store FBIN \
                      reader or convert it with `flipper convert`"
                .to_string(),
        });
    }
    let reader = std::io::Cursor::new(prefix)
        .take(filled as u64)
        .chain(reader);
    #[derive(PartialEq)]
    enum Section {
        Preamble,
        Taxonomy,
        Transactions,
    }
    let mut section = Section::Preamble;
    let mut builder = TaxonomyBuilder::new();
    let mut raw_txns: Vec<(usize, Vec<String>)> = Vec::new();

    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[taxonomy]" => {
                section = Section::Taxonomy;
                continue;
            }
            "[transactions]" => {
                section = Section::Transactions;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Preamble => {
                return Err(FormatError::Parse {
                    line: lineno,
                    message: format!("unexpected content before [taxonomy]: {line:?}"),
                });
            }
            Section::Taxonomy => {
                let mut parts = line.splitn(2, '\t');
                let child = parts.next().expect("split yields at least one part").trim();
                if child.is_empty() {
                    return Err(FormatError::Parse {
                        line: lineno,
                        message: "empty node name".to_string(),
                    });
                }
                match parts.next().map(str::trim).filter(|p| !p.is_empty()) {
                    None => builder.add_root_child(child)?,
                    Some(parent) => builder.add_child(child, parent)?,
                }
            }
            Section::Transactions => {
                let items: Vec<String> = line
                    .split('\t')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if items.is_empty() {
                    return Err(FormatError::Parse {
                        line: lineno,
                        message: "empty transaction".to_string(),
                    });
                }
                raw_txns.push((lineno, items));
            }
        }
    }

    let taxonomy = builder.build(policy)?;
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(raw_txns.len());
    for (lineno, items) in raw_txns {
        let mut row = Vec::with_capacity(items.len());
        for name in items {
            let Some(node) = taxonomy.node_by_name(&name) else {
                return Err(FormatError::Parse {
                    line: lineno,
                    message: format!("unknown item {name:?}"),
                });
            };
            // Items written at a padded position: accept the original name
            // and remap to its deepest synthetic copy so the data stays at
            // leaf level after LeafCopy rebalancing.
            let node = deepest_copy(&taxonomy, node);
            row.push(node);
        }
        rows.push(row);
    }
    let db = TransactionDb::new(rows)?;
    db.validate_against(&taxonomy).map_err(FormatError::Data)?;
    Ok(Dataset { taxonomy, db })
}

/// Follow synthetic self-copies down to the leaf level (identity for
/// ordinary leaves and internal nodes without copies).
///
/// Public because every dataset reader (the text parser here, the FBIN
/// reader in `flipper-store`) must remap items written under their original
/// names through exactly the same rule, or the formats would drift.
pub fn deepest_copy(tax: &Taxonomy, node: NodeId) -> NodeId {
    let mut cur = node;
    loop {
        let next = tax
            .children(cur)
            .iter()
            .copied()
            .find(|&c| tax.is_synthetic(c) && tax.name(c).starts_with(tax.name(node)));
        match next {
            Some(c) => cur = c,
            None => return cur,
        }
    }
}

/// Serialize a dataset back to the text format. Synthetic padding nodes are
/// written under their original names so a round-trip is stable.
pub fn write_dataset<W: Write>(w: &mut W, ds: &Dataset) -> Result<(), FormatError> {
    writeln!(
        w,
        "# flipper dataset: {} nodes, {} transactions",
        ds.taxonomy.node_count(),
        ds.db.len()
    )?;
    writeln!(w, "[taxonomy]")?;
    for node in ds.taxonomy.node_ids().skip(1) {
        if ds.taxonomy.is_synthetic(node) {
            continue;
        }
        let parent = ds.taxonomy.parent(node).expect("non-root");
        if parent.is_root() {
            writeln!(w, "{}", ds.taxonomy.name(node))?;
        } else {
            writeln!(
                w,
                "{}\t{}",
                ds.taxonomy.name(node),
                ds.taxonomy.name(parent)
            )?;
        }
    }
    writeln!(w, "[transactions]")?;
    for txn in ds.db.iter() {
        let names: Vec<&str> = txn
            .iter()
            .map(|&it| original_name(&ds.taxonomy, it))
            .collect();
        writeln!(w, "{}", names.join("\t"))?;
    }
    Ok(())
}

/// Name of the nearest non-synthetic ancestor-or-self.
fn original_name(tax: &Taxonomy, node: NodeId) -> &str {
    let mut cur = node;
    while tax.is_synthetic(cur) {
        cur = tax
            .parent(cur)
            .expect("synthetic nodes are never level-1 roots");
    }
    tax.name(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
# demo
[taxonomy]
drinks
food
beer\tdrinks
soda\tdrinks
bread\tfood
cheese\tfood
[transactions]
beer\tbread
beer\tcheese
soda\tbread
";

    #[test]
    fn parse_sample() {
        let ds = read_dataset(Cursor::new(SAMPLE), RebalancePolicy::LeafCopy).unwrap();
        assert_eq!(ds.taxonomy.height(), 2);
        assert_eq!(ds.db.len(), 3);
        let beer = ds.taxonomy.node_by_name("beer").unwrap();
        assert_eq!(ds.db.transaction(0).len(), 2);
        assert!(ds.db.transaction(0).contains(&beer));
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = read_dataset(Cursor::new(SAMPLE), RebalancePolicy::LeafCopy).unwrap();
        let mut out = Vec::new();
        write_dataset(&mut out, &ds).unwrap();
        let back = read_dataset(Cursor::new(&out[..]), RebalancePolicy::LeafCopy).unwrap();
        assert_eq!(ds.taxonomy, back.taxonomy);
        assert_eq!(ds.db, back.db);
    }

    #[test]
    fn unbalanced_input_is_padded_and_items_remapped() {
        // "snacks" is a level-1 leaf in a height-2 tree: LeafCopy pads it,
        // and a transaction mentioning "snacks" maps to the padded copy.
        let text = "\
[taxonomy]
drinks
snacks
beer\tdrinks
[transactions]
beer\tsnacks
";
        let ds = read_dataset(Cursor::new(text), RebalancePolicy::LeafCopy).unwrap();
        assert_eq!(ds.taxonomy.height(), 2);
        let padded = ds.taxonomy.node_by_name("snacks#1").unwrap();
        assert!(ds.db.transaction(0).contains(&padded));
        // And the round-trip writes it back as "snacks".
        let mut out = Vec::new();
        write_dataset(&mut out, &ds).unwrap();
        let text2 = String::from_utf8(out).unwrap();
        assert!(text2.contains("beer\tsnacks"));
        assert!(!text2.contains("snacks#1"));
    }

    #[test]
    fn unknown_item_reports_line() {
        let text = "[taxonomy]\nx\n[transactions]\nx\ty\n";
        let err = read_dataset(Cursor::new(text), RebalancePolicy::LeafCopy).unwrap_err();
        match err {
            FormatError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("\"y\""));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn fbin_magic_is_sniffed_even_through_tiny_buffers() {
        // FBIN-looking bytes produce the pointed mix-up error…
        let fbin = b"FBIN\x01\x00\x00\x00\x01garbage";
        for capacity in [1usize, 2, 64] {
            let r = std::io::BufReader::with_capacity(capacity, &fbin[..]);
            let err = read_dataset(r, RebalancePolicy::LeafCopy).unwrap_err();
            assert!(
                err.to_string().contains("FBIN"),
                "capacity {capacity}: {err}"
            );
        }
        // …while a real text dataset still parses through the same tiny
        // buffer (the sniffed prefix is chained back in front).
        let r = std::io::BufReader::with_capacity(1, SAMPLE.as_bytes());
        let ds = read_dataset(r, RebalancePolicy::LeafCopy).unwrap();
        assert_eq!(ds.db.len(), 3);
        // Inputs shorter than the magic are ordinary (bad) text.
        let err = read_dataset(std::io::Cursor::new(b"FB"), RebalancePolicy::LeafCopy).unwrap_err();
        assert!(!err.to_string().contains("FBIN dataset"));
    }

    #[test]
    fn content_before_section_rejected() {
        let err = read_dataset(
            Cursor::new("oops\n[taxonomy]\nx\n"),
            RebalancePolicy::LeafCopy,
        )
        .unwrap_err();
        assert!(matches!(err, FormatError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_node_name_rejected() {
        let err = read_dataset(
            Cursor::new("[taxonomy]\n\tparent\n"),
            RebalancePolicy::LeafCopy,
        )
        .unwrap_err();
        assert!(matches!(err, FormatError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\n[taxonomy]\n\nx\n# mid\ny\n[transactions]\n\nx\ty\n";
        let ds = read_dataset(Cursor::new(text), RebalancePolicy::LeafCopy).unwrap();
        assert_eq!(ds.db.len(), 1);
    }

    #[test]
    fn error_display_variants() {
        let e = FormatError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert_eq!(e.to_string(), "line 3: bad");
        let e: FormatError = std::io::Error::other("disk").into();
        assert!(e.to_string().contains("disk"));
    }
}
