//! Dependency-free parallel execution helpers.
//!
//! The counting stack (and everything above it — the miner's per-level
//! candidate batches, the bootstrap stability replicates, the brute-force
//! verifier) shards work over contiguous chunks handled by a
//! [`std::thread::scope`] pool. No work-stealing, no channels, no external
//! crates: each chunk is spawned on its own scoped worker and results are
//! joined back **in chunk order**, so any fold over them is deterministic
//! regardless of how the OS schedules the workers.
//!
//! The thread-count convention used across the workspace: `0` means
//! "auto-detect" ([`available_threads`]), `1` means sequential (no threads
//! are spawned), `n ≥ 2` means exactly `n` workers.
//!
//! When the `flipper-obs` recorder is enabled, every chunk runs under an
//! `exec.shard` span that records its worker slot and the queue wait
//! (time between the pool dispatching the batch and the chunk starting to
//! run) next to the run time; with the recorder disabled the only cost is
//! one atomic load per chunk.
//!
//! # Panic isolation
//!
//! Every chunk closure runs under `catch_unwind`: a panicking shard no
//! longer aborts the pool mid-scope. All workers are joined first — so
//! flipper-obs thread-local sheets flush cleanly and no spans leak — and
//! only then is the first panic (in **chunk order**, not wall-clock order)
//! resumed on the calling thread, where `flipper_guard::trap` can convert
//! it into a typed error at the API boundary. Each chunk is also a named
//! `flipper-guard` fault-injection site (`exec.chunk`), honouring `Panic`
//! and `Latency` faults from an armed plan.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Run one chunk under an `exec.shard` observability span tagged with its
/// worker slot. Slot 0 is the calling thread; spawned workers are 1-based
/// in spawn order — the same slot identity `map_group_chunks_with` pins
/// its state slices to. Also the `exec.chunk` fault-injection site.
#[inline]
fn traced_chunk<R>(slot: usize, spawn_stamp: u64, f: impl FnOnce() -> R) -> R {
    match flipper_guard::fault::injected(flipper_guard::fault::SITE_EXEC_CHUNK) {
        // lint:allow(panic-hygiene) deterministic fault injection: the pool's catch_unwind converts this into a typed error
        Some(flipper_guard::Fault::Panic) => panic!("injected fault: worker panic"),
        Some(flipper_guard::Fault::Latency { spins }) => flipper_guard::fault::spin(spins),
        _ => {}
    }
    if !flipper_obs::enabled() {
        return f();
    }
    flipper_obs::with_shard(slot as u32, || {
        let _span = flipper_obs::shard_span(slot as u64, spawn_stamp);
        f()
    })
}

/// Join caught chunk results, resuming the first panic **in chunk order**
/// only after every chunk has completed (all worker sheets flushed).
fn unwrap_chunks<R>(results: Vec<std::thread::Result<R>>) -> Vec<R> {
    let mut out = Vec::with_capacity(results.len());
    let mut first_panic = None;
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    out
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Hard ceiling on worker threads. More workers than this never helps these
/// workloads, and the clamp protects against a runaway `--threads` request
/// spawning unbounded OS threads per batch (thread-spawn failure would
/// abort the scope).
pub const MAX_THREADS: usize = 256;

/// Resolve a `threads` knob: `0` = auto-detect, anything else is literal,
/// clamped to [`MAX_THREADS`].
pub fn effective_threads(requested: usize) -> usize {
    let n = match requested {
        0 => available_threads(),
        n => n,
    };
    n.min(MAX_THREADS)
}

/// Split `0..n` into at most `chunks` contiguous ranges whose lengths differ
/// by at most one. Returns fewer ranges when `n < chunks`; never returns an
/// empty range.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(n);
    if chunks == 0 {
        return Vec::new();
    }
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Run `f` over the given ranges and return one result per range, **in
/// range order**. The first range runs on the calling thread while the
/// remaining ranges each get a scoped worker.
fn run_ranges<R, F>(mut ranges: Vec<Range<usize>>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .map(|r| traced_chunk(0, 0, || f(r)))
            .collect();
    }
    let first = ranges.remove(0);
    let f = &f;
    let results = std::thread::scope(|s| {
        let spawn_stamp = flipper_obs::stamp();
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        traced_chunk(i + 1, spawn_stamp, || f(r))
                    }))
                })
            })
            .collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(catch_unwind(AssertUnwindSafe(|| {
            traced_chunk(0, spawn_stamp, || f(first))
        })));
        // A worker can only fail its join by panicking *outside* the
        // catch_unwind above (thread-runtime trouble); fold that payload in
        // with the chunk panics instead of aborting the scope.
        out.extend(handles.into_iter().map(|h| h.join().and_then(|r| r)));
        out
    });
    unwrap_chunks(results)
}

/// Run `f` over the chunk ranges of `0..n` and return one result per chunk,
/// **in chunk order**. With one chunk (or `threads <= 1`) everything runs on
/// the calling thread; otherwise the first chunk runs on the calling thread
/// while the remaining chunks each get a scoped worker — exactly `threads`
/// runnable threads, no oversubscription by the blocked caller.
///
/// # Panics
/// Propagates panics from worker threads.
pub fn map_chunks<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = effective_threads(threads);
    run_ranges(chunk_ranges(n, threads), f)
}

/// Split `0..n` into at most `chunks` contiguous ranges like
/// [`chunk_ranges`], but only ever cutting **between groups**: positions `i`
/// where `same_group(i - 1, i)` is false. Each proposed even cut is snapped
/// forward to the next group boundary, so a group of adjacent equivalent
/// items is never split across two ranges (ranges may collapse when groups
/// are large; fewer, bigger ranges are returned then). Never returns an
/// empty range, and the ranges always cover `0..n` exactly.
pub fn group_chunk_ranges<B>(n: usize, chunks: usize, same_group: B) -> Vec<Range<usize>>
where
    B: Fn(usize, usize) -> bool,
{
    let mut out = Vec::new();
    let mut start = 0usize;
    for r in chunk_ranges(n, chunks) {
        let mut end = r.end;
        while end < n && same_group(end - 1, end) {
            end += 1;
        }
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    debug_assert_eq!(start, n);
    out
}

/// Shard a slice into contiguous chunks that never split a group of
/// adjacent items for which `same_group(&items[i - 1], &items[i])` holds,
/// and run `f` over each chunk, returning one result per chunk in order.
///
/// This is the sharding primitive behind prefix-cached support counting:
/// candidates sharing a `(k−1)`-prefix stay in one shard, so a kernel that
/// materializes per-group state (a prefix intersection) does exactly the
/// same work — and reports exactly the same statistics — at every thread
/// count.
///
/// # Panics
/// Propagates panics from worker threads.
pub fn map_group_chunks<'a, T, R, F, B>(
    threads: usize,
    items: &'a [T],
    same_group: B,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
    B: Fn(&T, &T) -> bool,
{
    let threads = effective_threads(threads);
    let ranges = group_chunk_ranges(items.len(), threads, |a, b| {
        same_group(&items[a], &items[b])
    });
    run_ranges(ranges, |r| f(&items[r]))
}

/// [`map_group_chunks`] with one mutable state slot per chunk: chunk `i`
/// (in range order) always runs against `states[i]`, whatever thread
/// executes it. The cached counting kernels use this to hand every worker
/// slot its own prefix cache — state never migrates between slots, so a
/// rerun at the same thread count sees the same warm caches and results
/// stay deterministic.
///
/// # Panics
/// Panics when `states` has fewer slots than chunks; propagates panics from
/// worker threads.
pub fn map_group_chunks_with<'a, T, S, R, F, B>(
    threads: usize,
    items: &'a [T],
    same_group: B,
    states: &mut [S],
    f: F,
) -> Vec<R>
where
    T: Sync,
    S: Send,
    R: Send,
    F: Fn(&'a [T], &mut S) -> R + Sync,
    B: Fn(&T, &T) -> bool,
{
    let threads = effective_threads(threads);
    let ranges = group_chunk_ranges(items.len(), threads, |a, b| {
        same_group(&items[a], &items[b])
    });
    assert!(
        states.len() >= ranges.len(),
        "need one state slot per chunk: {} < {}",
        states.len(),
        ranges.len()
    );
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .zip(states.iter_mut())
            .map(|(r, st)| traced_chunk(0, 0, || f(&items[r], st)))
            .collect();
    }
    let f = &f;
    let results = std::thread::scope(|s| {
        let spawn_stamp = flipper_obs::stamp();
        let mut slots = ranges.into_iter().zip(states.iter_mut());
        // lint:allow(panic-hygiene) chunk planning emits at least one range when items is non-empty
        let (first_range, first_state) = slots.next().expect("ranges.len() > 1");
        let handles: Vec<_> = slots
            .enumerate()
            .map(|(i, (r, st))| {
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        traced_chunk(i + 1, spawn_stamp, || f(&items[r], st))
                    }))
                })
            })
            .collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(catch_unwind(AssertUnwindSafe(|| {
            traced_chunk(0, spawn_stamp, || f(&items[first_range], first_state))
        })));
        out.extend(handles.into_iter().map(|h| h.join().and_then(|r| r)));
        out
    });
    unwrap_chunks(results)
}

/// Fallible chunk mapping: shard `items` like [`map_slice_chunks`] but let
/// each chunk return a `Result`; the first error **in chunk order** wins
/// (deterministic regardless of which worker failed first on the clock)
/// and every chunk still runs to completion before it is returned. This is
/// the cancellation-aware entry: chunk closures check a
/// [`flipper_guard::CancelToken`] at their boundaries and surface the
/// interrupt as their error type.
pub fn try_map_slice_chunks<'a, T, R, E, F>(
    threads: usize,
    items: &'a [T],
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&'a [T]) -> Result<R, E> + Sync,
{
    let per_chunk = map_slice_chunks(threads, items, f);
    per_chunk.into_iter().collect()
}

/// Shard a slice into contiguous chunks and run `f` over each, returning one
/// result per chunk in order. Convenience wrapper over [`map_chunks`].
pub fn map_slice_chunks<'a, T, R, F>(threads: usize, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    map_chunks(threads, items.len(), |r| f(&items[r]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 7, 64, 100] {
            for c in [1usize, 2, 3, 4, 9, 200] {
                let ranges = chunk_ranges(n, c);
                assert!(ranges.len() <= c.max(1));
                assert!(ranges.iter().all(|r| !r.is_empty()), "n={n} c={c}");
                let total: usize = ranges.iter().map(ExactSizeIterator::len).sum();
                assert_eq!(total, n, "n={n} c={c}");
                // Contiguous and in order.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                // Balanced within one item.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(ExactSizeIterator::len).min(),
                    ranges.iter().map(ExactSizeIterator::len).max(),
                ) {
                    assert!(max - min <= 1, "n={n} c={c}");
                }
            }
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        for threads in [1usize, 2, 4, 7] {
            let per_chunk = map_chunks(threads, 100, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = per_chunk.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_slice_chunks_sums_match() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: u64 = items.iter().sum();
        for threads in [1usize, 3, 8] {
            let total: u64 = map_slice_chunks(threads, &items, |c| c.iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, expect);
        }
    }

    #[test]
    fn group_chunk_ranges_never_split_groups() {
        // Items with group keys; groups are runs of equal keys.
        let keys = [0u32, 0, 0, 1, 1, 2, 3, 3, 3, 3, 4, 5, 5, 6];
        let same = |a: usize, b: usize| keys[a] == keys[b];
        for chunks in [1usize, 2, 3, 5, 14, 40] {
            let ranges = group_chunk_ranges(keys.len(), chunks, same);
            // Cover exactly, in order, never empty.
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, keys.len());
            assert!(ranges.len() <= chunks.max(1));
            // No cut falls inside a group.
            for r in &ranges {
                if r.end < keys.len() {
                    assert_ne!(keys[r.end - 1], keys[r.end], "chunks={chunks}: split group");
                }
            }
        }
    }

    #[test]
    fn group_chunk_ranges_degenerate_groups() {
        // One giant group: a single range regardless of the chunk request.
        let ranges = group_chunk_ranges(100, 8, |_, _| true);
        assert_eq!(ranges, vec![0..100]);
        // All-distinct groups: identical to the plain even split.
        let ranges = group_chunk_ranges(100, 8, |_, _| false);
        assert_eq!(ranges, chunk_ranges(100, 8));
        // Empty input.
        assert!(group_chunk_ranges(0, 4, |_, _| true).is_empty());
    }

    #[test]
    fn map_group_chunks_preserves_order_and_groups() {
        let items: Vec<u32> = (0..200).map(|i| i / 7).collect(); // groups of 7
        for threads in [1usize, 2, 4, 7] {
            let per_chunk =
                map_group_chunks(threads, &items, |a, b| a == b, |chunk| chunk.to_vec());
            // Concatenation is the identity.
            let flat: Vec<u32> = per_chunk.iter().flatten().copied().collect();
            assert_eq!(flat, items, "threads={threads}");
            // Chunk edges coincide with group edges.
            for chunk in &per_chunk {
                assert!(!chunk.is_empty());
            }
            for w in per_chunk.windows(2) {
                assert_ne!(w[0].last(), w[1].first(), "threads={threads}: split group");
            }
        }
    }

    #[test]
    fn map_group_chunks_with_pins_state_to_chunk_order() {
        let items: Vec<u32> = (0..100).map(|i| i / 5).collect(); // groups of 5
        for threads in [1usize, 2, 4, 7] {
            let mut states = vec![Vec::<u32>::new(); threads];
            let per_chunk = map_group_chunks_with(
                threads,
                &items,
                |a, b| a == b,
                &mut states,
                |chunk, st: &mut Vec<u32>| {
                    st.extend_from_slice(chunk);
                    chunk.to_vec()
                },
            );
            // Concatenation is the identity, exactly like map_group_chunks.
            let flat: Vec<u32> = per_chunk.iter().flatten().copied().collect();
            assert_eq!(flat, items, "threads={threads}");
            // State slot i recorded exactly chunk i, in order.
            for (i, chunk) in per_chunk.iter().enumerate() {
                assert_eq!(&states[i], chunk, "threads={threads} slot={i}");
            }
            for st in &states[per_chunk.len()..] {
                assert!(st.is_empty(), "unused slots untouched");
            }
        }
    }

    #[test]
    #[should_panic(expected = "state slot per chunk")]
    fn map_group_chunks_with_requires_enough_slots() {
        let items: Vec<u32> = (0..100).collect();
        let mut states = vec![0u32; 1];
        let _ = map_group_chunks_with(4, &items, |_, _| false, &mut states, |c, _| c.len());
    }

    #[test]
    fn zero_items_is_fine() {
        let r: Vec<u64> = map_chunks(4, 0, |_| unreachable!("no chunks for n=0"));
        assert!(r.is_empty());
    }

    #[test]
    fn effective_threads_resolves_auto_and_clamps() {
        assert!(effective_threads(0) >= 1);
        assert!(effective_threads(0) <= MAX_THREADS);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(6), 6);
        assert_eq!(effective_threads(100_000), MAX_THREADS);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_with_its_original_payload() {
        let _ = map_chunks(2, 10, |r| {
            if r.start > 0 {
                panic!("boom");
            }
            r.len()
        });
    }

    #[test]
    fn all_chunks_complete_before_a_panic_resumes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = map_chunks(4, 8, |r| {
                if r.start == 2 {
                    panic!("chunk 2 dies");
                }
                finished.fetch_add(1, Ordering::SeqCst);
                r.len()
            });
        }));
        assert!(caught.is_err(), "the panic must still propagate");
        assert_eq!(
            finished.load(Ordering::SeqCst),
            3,
            "the surviving chunks all ran to completion first"
        );
    }

    #[test]
    fn first_panic_in_chunk_order_wins() {
        // Chunks 1 and 3 both panic; the resumed payload must be chunk 1's
        // regardless of scheduling.
        for _ in 0..8 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = map_chunks(4, 4, |r| {
                    if r.start == 1 {
                        panic!("first");
                    }
                    if r.start == 3 {
                        panic!("second");
                    }
                    r.len()
                });
            }));
            let payload = caught.unwrap_err();
            assert_eq!(payload.downcast_ref::<&str>(), Some(&"first"));
        }
    }

    #[test]
    fn try_map_slice_chunks_collects_or_short_circuits() {
        let items: Vec<u64> = (0..100).collect();
        let ok: Result<Vec<u64>, &str> =
            try_map_slice_chunks(4, &items, |c| Ok(c.iter().sum::<u64>()));
        assert_eq!(ok.unwrap().iter().sum::<u64>(), (0..100).sum::<u64>());

        // Chunks 1 and 3 fail; the chunk-order-first error is reported.
        let err: Result<Vec<usize>, String> = try_map_slice_chunks(4, &items, |c| {
            if c[0] == 25 || c[0] == 75 {
                Err(format!("chunk at {}", c[0]))
            } else {
                Ok(c.len())
            }
        });
        assert_eq!(err.unwrap_err(), "chunk at 25");
    }

    #[test]
    fn injected_exec_faults_are_deterministic_and_contained() {
        use flipper_guard::fault::{arm, FaultKind, FaultPlan, SITE_EXEC_CHUNK};
        // Latency: injected stall, identical results.
        {
            let _armed = arm(FaultPlan::new(3).inject(SITE_EXEC_CHUNK, 2, FaultKind::Latency));
            let sums = map_chunks(4, 100, |r| r.sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        }
        // Panic: injected worker death propagates with the injection label
        // after all chunks complete.
        {
            let _armed = arm(FaultPlan::new(3).inject(SITE_EXEC_CHUNK, 2, FaultKind::Panic));
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = map_chunks(4, 100, |r| r.sum::<usize>());
            }));
            let payload = caught.unwrap_err();
            assert_eq!(
                payload.downcast_ref::<&str>(),
                Some(&"injected fault: worker panic")
            );
        }
    }
}
