//! Sorted transaction-id lists and fast intersections — the vertical
//! counting primitive.

/// Size of the intersection of two sorted, duplicate-free tid lists.
///
/// Uses a linear merge when the lists are of comparable length and galloping
/// (exponential + binary search) when one list is much shorter — the common
/// case when a rare item is intersected with a popular one.
pub fn intersect_size(a: &[u32], b: &[u32]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    // Galloping pays off when the length ratio is large.
    if long.len() / short.len() >= 8 {
        gallop_intersect_size(short, long)
    } else {
        merge_intersect_size(short, long)
    }
}

/// Intersection of two sorted tid lists, materialized.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

/// Intersection of two sorted tid lists, written into `out` (cleared
/// first). The allocation-free core of [`intersect`]: reusing one output
/// buffer across many intersections keeps a hot counting loop from
/// allocating per group.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len().min(b.len()));
    // Branch-free cursor advance: both indices move by a comparison mask
    // instead of a three-way `match`, leaving only the (rare, predictable)
    // equality push as a branch.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            out.push(x);
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
}

fn merge_intersect_size(a: &[u32], b: &[u32]) -> u64 {
    // Fully branchless merge: the match count and both cursors advance by
    // comparison masks, so the loop body carries no unpredictable branch
    // and compiles to straight-line cmov/setcc code.
    let (mut i, mut j, mut n) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        n += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    n
}

fn gallop_intersect_size(short: &[u32], long: &[u32]) -> u64 {
    let mut n = 0u64;
    let mut base = 0usize;
    for &x in short {
        if base >= long.len() {
            break;
        }
        // Exponential probe: find an index whose value is >= x.
        let mut step = 1;
        let mut hi = base + 1;
        while hi < long.len() && long[hi] < x {
            hi += step;
            step *= 2;
        }
        let end = (hi + 1).min(long.len());
        // First position in [base, end) with value >= x.
        let pos = base + long[base..end].partition_point(|&v| v < x);
        if pos < long.len() && long[pos] == x {
            n += 1;
            base = pos + 1;
        } else {
            base = pos;
        }
    }
    n
}

/// Intersection of `k ≥ 1` sorted tid lists, materialized.
///
/// Lists are processed shortest-first so the running intersection shrinks as
/// fast as possible; returns early once it empties.
pub fn intersect_many(lists: &[&[u32]]) -> Vec<u32> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        2 => intersect(lists[0], lists[1]),
        _ => {
            let mut order: Vec<usize> = (0..lists.len()).collect();
            order.sort_by_key(|&i| lists[i].len());
            let mut acc = intersect(lists[order[0]], lists[order[1]]);
            for &i in &order[2..] {
                if acc.is_empty() {
                    return acc;
                }
                acc = intersect(&acc, lists[i]);
            }
            acc
        }
    }
}

/// Size of the intersection of `k ≥ 1` sorted tid lists.
///
/// Lists are processed shortest-first so the running intersection shrinks as
/// fast as possible; returns early once it empties.
pub fn intersect_size_many(lists: &[&[u32]]) -> u64 {
    match lists.len() {
        0 => 0,
        1 => lists[0].len() as u64,
        2 => intersect_size(lists[0], lists[1]),
        _ => {
            let mut order: Vec<usize> = (0..lists.len()).collect();
            order.sort_by_key(|&i| lists[i].len());
            let mut acc = intersect(lists[order[0]], lists[order[1]]);
            for &i in &order[2..] {
                if acc.is_empty() {
                    return 0;
                }
                acc = intersect(&acc, lists[i]);
            }
            acc.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256pp};

    #[test]
    fn basic_intersections() {
        assert_eq!(intersect_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(intersect_size(&[], &[1, 2]), 0);
        assert_eq!(intersect_size(&[1, 2], &[]), 0);
        assert_eq!(intersect_size(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(intersect(&[1, 3, 5], &[3, 4, 5]), vec![3, 5]);
    }

    #[test]
    fn galloping_path_is_exercised() {
        // short:long ratio >= 8 triggers galloping.
        let long: Vec<u32> = (0..1000).collect();
        let short = vec![0u32, 500, 999];
        assert_eq!(intersect_size(&short, &long), 3);
        let short = vec![1001u32, 1002];
        assert_eq!(intersect_size(&short, &long), 0);
    }

    #[test]
    fn many_way_intersection() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).step_by(2).collect();
        let c: Vec<u32> = (0..100).step_by(3).collect();
        // Multiples of 6 below 100: 0,6,...,96 → 17.
        assert_eq!(intersect_size_many(&[&a, &b, &c]), 17);
        assert_eq!(intersect_size_many(&[&a]), 100);
        assert_eq!(intersect_size_many(&[]), 0);
        // Early exit when the accumulator empties.
        let d: Vec<u32> = vec![1000];
        assert_eq!(intersect_size_many(&[&a, &d, &b, &c]), 0);
    }

    /// A random sorted, duplicate-free tid list with up to 79 entries drawn
    /// from `0..300` — the shape the retired proptest strategy produced.
    fn sorted_set(rng: &mut Xoshiro256pp) -> Vec<u32> {
        let len = rng.gen_range(0..80usize);
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..len {
            set.insert(rng.gen_range(0..300u32));
        }
        set.into_iter().collect()
    }

    #[test]
    fn intersect_size_matches_naive() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xA11CE);
        let mut buf = Vec::new();
        for _ in 0..256 {
            let a = sorted_set(&mut rng);
            let b = sorted_set(&mut rng);
            let naive = a.iter().filter(|x| b.contains(x)).count() as u64;
            assert_eq!(intersect_size(&a, &b), naive);
            assert_eq!(intersect_size(&b, &a), naive);
            assert_eq!(intersect(&a, &b).len() as u64, naive);
            // The buffer-reusing form agrees and fully overwrites stale
            // contents from the previous iteration.
            intersect_into(&a, &b, &mut buf);
            assert_eq!(buf, intersect(&a, &b));
        }
    }

    #[test]
    fn gallop_matches_merge() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xB0B);
        for _ in 0..256 {
            let a = sorted_set(&mut rng);
            let b = sorted_set(&mut rng);
            assert_eq!(
                super::gallop_intersect_size(&a, &b),
                super::merge_intersect_size(&a, &b)
            );
        }
    }

    #[test]
    fn intersect_many_matches_size_many() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xD00D);
        for _ in 0..128 {
            let a = sorted_set(&mut rng);
            let b = sorted_set(&mut rng);
            let c = sorted_set(&mut rng);
            let lists: [&[u32]; 3] = [&a, &b, &c];
            let m = intersect_many(&lists);
            assert!(m.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert_eq!(m.len() as u64, intersect_size_many(&lists));
        }
        assert!(intersect_many(&[]).is_empty());
        assert_eq!(intersect_many(&[&[1u32, 2, 3][..]]), vec![1, 2, 3]);
    }

    #[test]
    fn many_matches_pairwise() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xCAFE);
        for _ in 0..256 {
            let a = sorted_set(&mut rng);
            let b = sorted_set(&mut rng);
            let c = sorted_set(&mut rng);
            let ab = intersect(&a, &b);
            let expect = intersect(&ab, &c).len() as u64;
            assert_eq!(intersect_size_many(&[&a, &b, &c]), expect);
        }
    }
}
