//! Pluggable result sinks: where labeled mining results go.
//!
//! A [`ResultSink`] consumes `(label, taxonomy, config, result)` records —
//! one per mining run — and renders them somewhere: a human-readable
//! [`TextReport`], the machine-readable [`JsonWriter`]
//! (`flipper-results/v1`), or an accumulating [`TopK`] leaderboard. The CLI
//! fans one run out to several sinks at once (stdout report + `--output-json`
//! file); a future server frontend streams sweeps through the same trait.
//!
//! # The `flipper-results/v1` schema
//!
//! A single JSON document (hand-rolled — the workspace builds offline with
//! zero external crates), keys always in the order shown:
//!
//! ```text
//! { "schema": "flipper-results/v1",
//!   "degraded": "…",   // additive; present only for partial-data runs
//!   "runs": [
//!     { "label": "...",
//!       "config": { "measure", "gamma", "epsilon", "min_support",
//!                   "pruning", "max_k" },
//!       "patterns": [
//!         { "items": ["a11","b11"], "size": 2, "flip_gap": 0.683,
//!           "chain": [ { "level", "items", "support", "corr", "label" } ] } ],
//!       "totals": { "patterns", "positive", "negative" },
//!       "cells": [ { "level", "k", "evaluated", "frequent",
//!                    "positive", "negative", "alive" } ],
//!       "stats": { ... search counters ... } } ] }
//! ```
//!
//! The document deliberately records only **result-determining** inputs and
//! **deterministic** outputs: the execution knobs (`engine`, `threads`,
//! `cache_budget`), the engine's internal work counters, and wall-clock
//! timings are all excluded, so the bytes are identical at every thread
//! count, under every counting engine and cache budget, and on every
//! machine — the property the golden-file test pins. Timings and engine
//! counters belong to the `flipper-quickbench/v1` schema instead.

use crate::error::FlipperError;
use flipper_core::{FlipperConfig, FlippingPattern, MinSupports, MiningResult};
use flipper_measures::Measure;
use flipper_taxonomy::Taxonomy;
use std::io::Write;

/// A consumer of labeled mining results.
pub trait ResultSink {
    /// Consume one run. `label` distinguishes sweep points; single runs
    /// conventionally use `"mine"`.
    fn consume(
        &mut self,
        label: &str,
        taxonomy: &Taxonomy,
        config: &FlipperConfig,
        result: &MiningResult,
    ) -> Result<(), FlipperError>;

    /// Flush and finalize. Must be called exactly once, after the last
    /// [`consume`](ResultSink::consume).
    fn finish(&mut self) -> Result<(), FlipperError> {
        Ok(())
    }
}

/// Feed every sweep run through `sink` (in order) and finish it.
pub fn emit_runs(
    sink: &mut dyn ResultSink,
    taxonomy: &Taxonomy,
    runs: &[crate::SweepRun],
) -> Result<(), FlipperError> {
    for run in runs {
        sink.consume(&run.label, taxonomy, &run.config, &run.result)?;
    }
    sink.finish()
}

fn write_err(e: std::io::Error) -> FlipperError {
    FlipperError::io("writing report", e)
}

// ---------------------------------------------------------------- TextReport

/// Human-readable report, the format the CLI has always printed.
pub struct TextReport<W: Write> {
    w: W,
    top: usize,
    runs_written: usize,
}

impl<W: Write> TextReport<W> {
    /// Report into `w`, printing every pattern.
    pub fn new(w: W) -> Self {
        TextReport {
            w,
            top: usize::MAX,
            runs_written: 0,
        }
    }

    /// Print only the `top` patterns per run (by descending flip gap).
    pub fn with_top(mut self, top: usize) -> Self {
        self.top = top;
        self
    }

    /// Recover the writer after [`finish`](ResultSink::finish).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> ResultSink for TextReport<W> {
    fn consume(
        &mut self,
        label: &str,
        taxonomy: &Taxonomy,
        _config: &FlipperConfig,
        result: &MiningResult,
    ) -> Result<(), FlipperError> {
        if self.runs_written > 0 {
            writeln!(self.w).map_err(write_err)?;
        }
        self.runs_written += 1;
        writeln!(
            self.w,
            "[{label}] {} flipping patterns (showing {})",
            result.patterns.len(),
            self.top.min(result.patterns.len())
        )
        .map_err(write_err)?;
        for p in result.top_k_by_gap(self.top) {
            writeln!(self.w, "gap {:.3}:", p.flip_gap()).map_err(write_err)?;
            writeln!(self.w, "{}\n", p.display(taxonomy)).map_err(write_err)?;
        }
        writeln!(
            self.w,
            "pos={} neg={}",
            result.total_positive(),
            result.total_negative()
        )
        .map_err(write_err)?;
        writeln!(self.w, "stats: {}", result.stats.summary()).map_err(write_err)?;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), FlipperError> {
        self.w.flush().map_err(write_err)
    }
}

// ---------------------------------------------------------------- JsonWriter

/// Escape a string as a JSON string literal.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a finite float with Rust's shortest round-trip formatting (the
/// same bits always give the same text); non-finite values become `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// `["name", "name", ...]` for an itemset under `tax`.
fn push_items(out: &mut String, tax: &Taxonomy, items: &[flipper_taxonomy::NodeId]) {
    out.push('[');
    for (i, &item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, tax.name(item));
    }
    out.push(']');
}

fn render_pattern(out: &mut String, tax: &Taxonomy, p: &FlippingPattern) {
    out.push_str("{\"items\":");
    push_items(out, tax, p.leaf_itemset.items());
    out.push_str(&format!(",\"size\":{},\"flip_gap\":", p.size()));
    push_f64(out, p.flip_gap());
    out.push_str(",\"chain\":[");
    for (i, lv) in p.chain.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"level\":{},\"items\":", lv.level));
        push_items(out, tax, lv.itemset.items());
        out.push_str(&format!(",\"support\":{},\"corr\":", lv.support));
        push_f64(out, lv.corr);
        out.push_str(",\"label\":");
        push_json_string(out, &lv.label.sigil().to_string());
        out.push('}');
    }
    out.push_str("]}");
}

/// Stable lower-case measure name.
fn measure_name(m: Measure) -> &'static str {
    match m {
        Measure::AllConfidence => "all-confidence",
        Measure::Coherence => "coherence",
        Measure::Cosine => "cosine",
        Measure::Kulczynski => "kulczynski",
        Measure::MaxConfidence => "max-confidence",
    }
}

fn render_config(out: &mut String, cfg: &FlipperConfig) {
    out.push_str("{\"measure\":");
    push_json_string(out, measure_name(cfg.measure));
    out.push_str(",\"gamma\":");
    push_f64(out, cfg.thresholds.gamma);
    out.push_str(",\"epsilon\":");
    push_f64(out, cfg.thresholds.epsilon);
    out.push_str(",\"min_support\":{");
    match &cfg.min_support {
        MinSupports::Fractions(fs) => {
            out.push_str("\"fractions\":[");
            for (i, &f) in fs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, f);
            }
            out.push(']');
        }
        MinSupports::Counts(cs) => {
            out.push_str("\"counts\":[");
            for (i, &c) in cs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{c}"));
            }
            out.push(']');
        }
    }
    out.push_str("},\"pruning\":");
    push_json_string(out, cfg.pruning.name());
    out.push_str(",\"max_k\":");
    match cfg.max_k {
        Some(k) => out.push_str(&format!("{k}")),
        None => out.push_str("null"),
    }
    out.push('}');
}

/// The machine-readable sink: one `flipper-results/v1` document per writer.
///
/// Runs are streamed — each [`consume`](ResultSink::consume) appends one
/// entry to the `runs` array, [`finish`](ResultSink::finish) closes the
/// document. See the module docs for the schema and the determinism
/// contract (byte-identical at every thread count).
pub struct JsonWriter<W: Write> {
    w: W,
    degraded: Option<String>,
    runs_written: usize,
    finished: bool,
}

impl<W: Write> JsonWriter<W> {
    /// Write a `flipper-results/v1` document into `w`.
    pub fn new(w: W) -> Self {
        JsonWriter {
            w,
            degraded: None,
            runs_written: 0,
            finished: false,
        }
    }

    /// Stamp the document as **degraded**: results were computed from
    /// partial data (e.g. a salvaged FBIN file with quarantined chunks),
    /// and `note` says what was lost. The field is strictly additive — it
    /// only appears when set, so documents from clean runs stay
    /// byte-identical to pre-salvage goldens — and machine consumers should
    /// treat its mere presence as "do not compare against intact-data
    /// results".
    pub fn with_degraded(mut self, note: impl Into<String>) -> Self {
        self.degraded = Some(note.into());
        self
    }

    /// The document opener: schema line, then the `degraded` stamp when
    /// one is set, then the `runs` array.
    fn header(&self) -> String {
        let mut out = format!("{{\n  \"schema\": \"{}\",\n", flipper_wire::RESULTS_V1);
        if let Some(note) = &self.degraded {
            out.push_str("  \"degraded\": ");
            push_json_string(&mut out, note);
            out.push_str(",\n");
        }
        out
    }

    /// Recover the writer after [`finish`](ResultSink::finish).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> ResultSink for JsonWriter<W> {
    fn consume(
        &mut self,
        label: &str,
        taxonomy: &Taxonomy,
        config: &FlipperConfig,
        result: &MiningResult,
    ) -> Result<(), FlipperError> {
        assert!(!self.finished, "consume after finish");
        let mut out = String::new();
        if self.runs_written == 0 {
            out.push_str(&self.header());
            out.push_str("  \"runs\": [\n");
        } else {
            out.push_str(",\n");
        }
        self.runs_written += 1;

        out.push_str("    {\"label\":");
        push_json_string(&mut out, label);
        out.push_str(",\"config\":");
        render_config(&mut out, config);
        out.push_str(",\n     \"patterns\":[");
        for (i, p) in result.patterns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      ");
            render_pattern(&mut out, taxonomy, p);
        }
        if !result.patterns.is_empty() {
            out.push_str("\n     ");
        }
        out.push_str("],\n     \"totals\":{");
        out.push_str(&format!(
            "\"patterns\":{},\"positive\":{},\"negative\":{}}}",
            result.patterns.len(),
            result.total_positive(),
            result.total_negative()
        ));
        out.push_str(",\n     \"cells\":[");
        for (i, c) in result.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":{},\"k\":{},\"evaluated\":{},\"frequent\":{},\
                 \"positive\":{},\"negative\":{},\"alive\":{}}}",
                c.level, c.k, c.evaluated, c.frequent, c.positive, c.negative, c.alive
            ));
        }
        let s = &result.stats;
        out.push_str("],\n     \"stats\":{");
        out.push_str(&format!(
            "\"cells_evaluated\":{},\"candidates_generated\":{},\
             \"pruned_by_sibp\":{},\"pruned_by_support\":{},\
             \"dead_parent_cells\":{},\"frequent_found\":{},\
             \"positive_found\":{},\"negative_found\":{},\"tpg_cap\":{},\
             \"sibp_banned_items\":{},\"peak_resident_itemsets\":{},\
             \"total_stored_itemsets\":{}}}}}",
            s.cells_evaluated,
            s.candidates_generated,
            s.pruned_by_sibp,
            s.pruned_by_support,
            s.dead_parent_cells,
            s.frequent_found,
            s.positive_found,
            s.negative_found,
            s.tpg_cap,
            s.sibp_banned_items,
            s.peak_resident_itemsets,
            s.total_stored_itemsets,
        ));
        self.w.write_all(out.as_bytes()).map_err(write_err)
    }

    fn finish(&mut self) -> Result<(), FlipperError> {
        assert!(!self.finished, "finish called twice");
        self.finished = true;
        let tail = if self.runs_written == 0 {
            format!("{}  \"runs\": []\n}}\n", self.header())
        } else {
            "\n  ]\n}\n".to_string()
        };
        self.w.write_all(tail.as_bytes()).map_err(write_err)?;
        self.w.flush().map_err(write_err)
    }
}

// ---------------------------------------------------------------- TopK

/// An accumulating leaderboard: keeps the `k` patterns with the largest
/// flip gap seen across every consumed run (ties broken by label, then by
/// leaf itemset, for fully deterministic ordering).
pub struct TopK {
    k: usize,
    entries: Vec<TopKEntry>,
}

/// One leaderboard entry.
#[derive(Debug, Clone)]
pub struct TopKEntry {
    /// Label of the run the pattern came from.
    pub label: String,
    /// The pattern's flip gap (cached for sorting).
    pub gap: f64,
    /// The pattern itself.
    pub pattern: FlippingPattern,
}

impl TopK {
    /// Keep the best `k` patterns.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            entries: Vec::new(),
        }
    }

    /// The current leaderboard, descending by gap.
    pub fn entries(&self) -> &[TopKEntry] {
        &self.entries
    }

    /// Render the leaderboard as text lines (`gap label itemset`).
    pub fn render(&self, taxonomy: &Taxonomy) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{:.3}  [{}]  {}\n",
                e.gap,
                e.label,
                e.pattern.leaf_itemset.display(taxonomy)
            ));
        }
        out
    }
}

impl ResultSink for TopK {
    fn consume(
        &mut self,
        label: &str,
        _taxonomy: &Taxonomy,
        _config: &FlipperConfig,
        result: &MiningResult,
    ) -> Result<(), FlipperError> {
        for p in &result.patterns {
            self.entries.push(TopKEntry {
                label: label.to_string(),
                gap: p.flip_gap(),
                pattern: p.clone(),
            });
        }
        self.entries.sort_by(|a, b| {
            b.gap
                .total_cmp(&a.gap)
                .then_with(|| a.label.cmp(&b.label))
                .then_with(|| a.pattern.leaf_itemset.cmp(&b.pattern.leaf_itemset))
        });
        self.entries.truncate(self.k);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::source::Generator;
    use flipper_datagen::planted::PlantedParams;

    fn session_and_result() -> (Session, FlipperConfig, MiningResult) {
        let session = Session::open(Generator::Planted(PlantedParams::default())).unwrap();
        let (gamma, epsilon) = flipper_datagen::planted::recommended_thresholds();
        let cfg = FlipperConfig {
            thresholds: flipper_measures::Thresholds::new(gamma, epsilon),
            min_support: flipper_core::MinSupports::Counts(vec![5]),
            ..Default::default()
        };
        let result = session.mine(&cfg).unwrap();
        assert!(!result.patterns.is_empty(), "calibrated run finds patterns");
        (session, cfg, result)
    }

    #[test]
    fn text_report_prints_patterns_and_stats() {
        let (session, cfg, result) = session_and_result();
        let mut sink = TextReport::new(Vec::new()).with_top(1);
        sink.consume("mine", session.taxonomy(), &cfg, &result)
            .unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("[mine]"));
        assert!(text.contains("flipping patterns (showing 1)"));
        assert!(text.contains("stats: cells="));
    }

    #[test]
    fn json_writer_emits_schema_with_stable_shape() {
        let (session, cfg, result) = session_and_result();
        let mut sink = JsonWriter::new(Vec::new());
        sink.consume("a", session.taxonomy(), &cfg, &result)
            .unwrap();
        sink.consume("b", session.taxonomy(), &cfg, &result)
            .unwrap();
        sink.finish().unwrap();
        let doc = String::from_utf8(sink.into_inner()).unwrap();
        assert!(doc.contains("\"schema\": \"flipper-results/v1\""));
        assert_eq!(doc.matches("{\"label\":").count(), 2);
        assert!(doc.contains("\"pruning\":\"flipping+tpg+sibp\""));
        assert!(doc.contains("\"min_support\":{\"counts\":[5]}"));
        // Execution knobs and engine work counters are deliberately
        // absent: the bytes must be identical across engines, thread
        // counts and cache budgets.
        assert!(!doc.contains("threads"));
        assert!(!doc.contains("engine"));
        assert!(!doc.contains("elapsed"));
        assert!(!doc.contains("\"counter\""));
        assert!(!doc.contains("intersections"));
        assert!(!doc.contains("cache"));
        // Structural balance (stand-in for a JSON parser offline).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        let unescaped = doc.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_writer_same_input_same_bytes() {
        let (session, cfg, result) = session_and_result();
        let render = || {
            let mut sink = JsonWriter::new(Vec::new());
            sink.consume("mine", session.taxonomy(), &cfg, &result)
                .unwrap();
            sink.finish().unwrap();
            sink.into_inner()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn json_writer_empty_document_is_closed() {
        let mut sink = JsonWriter::new(Vec::new());
        sink.finish().unwrap();
        let doc = String::from_utf8(sink.into_inner()).unwrap();
        assert!(doc.contains("\"runs\": []"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn degraded_stamp_is_strictly_additive() {
        let (session, cfg, result) = session_and_result();
        let render = |degraded: Option<&str>| {
            let mut sink = JsonWriter::new(Vec::new());
            if let Some(note) = degraded {
                sink = sink.with_degraded(note);
            }
            sink.consume("mine", session.taxonomy(), &cfg, &result)
                .unwrap();
            sink.finish().unwrap();
            String::from_utf8(sink.into_inner()).unwrap()
        };
        let clean = render(None);
        assert!(!clean.contains("degraded"));
        let stamped = render(Some("quarantined 2 chunks (\"bit rot\")"));
        assert!(stamped
            .contains("\"degraded\": \"quarantined 2 chunks (\\\"bit rot\\\")\",\n  \"runs\""));
        // Removing the one stamped line recovers the clean bytes exactly.
        let stripped: String = stamped
            .lines()
            .filter(|l| !l.contains("\"degraded\""))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert_eq!(stripped, clean);

        // Empty documents carry the stamp too.
        let mut sink = JsonWriter::new(Vec::new()).with_degraded("salvage");
        sink.finish().unwrap();
        let doc = String::from_utf8(sink.into_inner()).unwrap();
        assert!(doc.contains("\"degraded\": \"salvage\""));
        assert!(doc.contains("\"runs\": []"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn topk_sink_keeps_best_across_runs() {
        let (session, cfg, result) = session_and_result();
        let mut sink = TopK::new(3);
        sink.consume("r1", session.taxonomy(), &cfg, &result)
            .unwrap();
        sink.consume("r2", session.taxonomy(), &cfg, &result)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.entries().len(), 3.min(result.patterns.len() * 2));
        for w in sink.entries().windows(2) {
            assert!(w[0].gap >= w[1].gap);
        }
        let rendered = sink.render(session.taxonomy());
        assert!(rendered.contains("[r1]"));
    }

    #[test]
    fn emit_runs_feeds_every_sweep_point() {
        let (session, cfg, _) = session_and_result();
        let runs = session.sweep().pruning_variants(&cfg).run().unwrap();
        let mut sink = JsonWriter::new(Vec::new());
        emit_runs(&mut sink, session.taxonomy(), &runs).unwrap();
        let doc = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(doc.matches("{\"label\":").count(), 4);
        assert!(doc.contains("\"label\":\"basic\""));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "we\"ird\\na\nme");
        assert_eq!(out, "\"we\\\"ird\\\\na\\u000ame\"");
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_f64(&mut out, 0.75);
        assert_eq!(out, "0.75");
    }
}
