//! Parameter sweeps: many labeled configurations against one session.
//!
//! Tuning γ/ε, comparing pruning variants and benchmarking engine × thread
//! matrices all used to be hand-rolled loops that re-ingested the dataset
//! per point. A [`Sweep`] runs any number of [`FlipperConfig`]s against the
//! session's one cached view, sharding *runs* (not just candidate batches)
//! over `flipper_data::exec` workers, and returns labeled results in
//! submission order — each bit-identical to calling
//! [`Session::mine`](crate::Session::mine) with that configuration alone.
//!
//! Two cost levers ride on top, neither of which can change any result:
//!
//! * **Deduplication** — points that agree on every result-determining
//!   field (measure, thresholds, supports, pruning, `max_k`) mine once;
//!   the repeats reuse the result and are flagged via
//!   [`SweepRun::duplicate_of`].
//! * **Support seeding** (default on, [`Sweep::with_seeding`]) — runs
//!   answer `(level, itemset)` supports already counted by earlier runs
//!   from the session's [`flipper_data::SupportCache`] and deposit their
//!   own counts back for the next sweep.

use crate::checkpoint::{point_key, CheckpointRow, SweepJournal};
use crate::error::FlipperError;
use crate::session::Session;
use flipper_core::{
    mine_with_view, mine_with_view_seeded, FlipperConfig, MinSupports, MiningResult, PruningConfig,
};
use flipper_data::{exec, CountingEngine};
use flipper_guard::CancelToken;
use flipper_measures::Thresholds;
use std::collections::BTreeMap;

/// One γ/ε grid point: `Some((label, thresholds))` when the pair satisfies
/// the paper's `ε < γ` constraint, `None` otherwise. The single source of
/// the grid skip rule and the `g{γ}/e{ε}` label format — shared by
/// [`Sweep::thresholds_grid`] and the CLI `sweep` subcommand so their
/// machine-readable labels can never diverge.
pub fn threshold_point(gamma: f64, epsilon: f64) -> Option<(String, Thresholds)> {
    (epsilon < gamma).then(|| {
        (
            format!("g{gamma}/e{epsilon}"),
            Thresholds { gamma, epsilon },
        )
    })
}

/// One completed sweep point.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The label attached when the point was added.
    pub label: String,
    /// The exact configuration that ran.
    pub config: FlipperConfig,
    /// Its mining result.
    pub result: MiningResult,
    /// `Some(label)` when this point's result-determining fields matched
    /// an earlier point, whose result was reused instead of re-mined.
    /// Engine, thread count and cache budget never change results, so
    /// points differing only in those are duplicates by construction.
    pub duplicate_of: Option<String>,
}

/// The fields of a configuration that can change the mined result. Two
/// points with equal keys produce bit-identical results, so the sweep mines
/// the first and reuses it for the rest. Floats are keyed by their exact
/// bit patterns — no epsilon games.
fn result_key(cfg: &FlipperConfig) -> String {
    let min_support = match &cfg.min_support {
        MinSupports::Counts(v) => format!("c{v:?}"),
        MinSupports::Fractions(v) => {
            let bits: Vec<u64> = v.iter().map(|f| f.to_bits()).collect();
            format!("f{bits:?}")
        }
    };
    format!(
        "{:?}|g{:016x}|e{:016x}|{min_support}|{:?}|k{:?}",
        cfg.measure,
        cfg.thresholds.gamma.to_bits(),
        cfg.thresholds.epsilon.to_bits(),
        cfg.pruning,
        cfg.max_k,
    )
}

/// Builder for a labeled set of mining runs over one [`Session`].
///
/// Points are added either individually ([`add`](Sweep::add)) or through
/// the grid helpers; [`run`](Sweep::run) validates every configuration up
/// front, executes them (optionally in parallel), and returns one
/// [`SweepRun`] per point in submission order.
///
/// ```
/// use flipper_api::{Generator, Session, FlipperConfig, MinSupports};
/// use flipper_datagen::planted::PlantedParams;
///
/// let session = Session::open(Generator::Planted(PlantedParams::default()))?;
/// let base = FlipperConfig {
///     min_support: MinSupports::Counts(vec![5]),
///     ..Default::default()
/// };
/// let runs = session
///     .sweep()
///     .pruning_variants(&base)
///     .run()?;
/// assert_eq!(runs.len(), 4);
/// // Every variant finds the same planted patterns.
/// assert!(runs.windows(2).all(|w| w[0].result.patterns == w[1].result.patterns));
/// # Ok::<(), flipper_api::FlipperError>(())
/// ```
#[derive(Debug)]
pub struct Sweep<'s> {
    session: &'s Session,
    points: Vec<(String, FlipperConfig)>,
    jobs: usize,
    seed_supports: bool,
    token: Option<&'s CancelToken>,
}

impl<'s> Sweep<'s> {
    /// Start an empty sweep over `session` (usually via
    /// [`Session::sweep`](crate::Session::sweep)).
    pub fn new(session: &'s Session) -> Self {
        Sweep {
            session,
            points: Vec::new(),
            jobs: 1,
            seed_supports: true,
            token: None,
        }
    }

    /// Run the sweep under a [`CancelToken`]: the token is checked before
    /// every point (and, inside each run, at cell boundaries — the token is
    /// not threaded into the miner, so a sweep stops between points), and a
    /// cancelled or expired token surfaces as
    /// [`FlipperError::Cancelled`] / [`FlipperError::Timeout`] from
    /// [`run`](Sweep::run). Results of points that complete are identical
    /// with and without a live token.
    pub fn with_token(mut self, token: &'s CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Toggle seeding from the session support cache (default on). Seeded
    /// points answer already-counted `(level, itemset)` supports from
    /// earlier completed runs instead of re-counting them, and deposit
    /// their own counts back for the next sweep. Results are identical
    /// either way — supports are data facts, independent of any
    /// configuration — so turning this off only changes counting cost.
    pub fn with_seeding(mut self, seed_supports: bool) -> Self {
        self.seed_supports = seed_supports;
        self
    }

    /// Shard the sweep's *runs* over `jobs` scoped workers (`0` =
    /// auto-detect, `1` = sequential). Independent of each run's own
    /// `cfg.threads`; prefer run-level parallelism for grids of many small
    /// runs and config-level threads for few large ones.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Add one labeled configuration.
    pub fn add(mut self, label: impl Into<String>, config: FlipperConfig) -> Self {
        self.points.push((label.into(), config));
        self
    }

    /// Add the γ × ε grid over `base`: one point per pair with
    /// `epsilon < gamma` (invalid pairs are skipped — a rectangular grid
    /// over the paper's `0 ≤ ε < γ ≤ 1` constraint is always triangular),
    /// labeled `g{γ}/e{ε}`.
    pub fn thresholds_grid(
        mut self,
        base: &FlipperConfig,
        gammas: &[f64],
        epsilons: &[f64],
    ) -> Self {
        for &gamma in gammas {
            for &epsilon in epsilons {
                if let Some((label, thresholds)) = threshold_point(gamma, epsilon) {
                    let mut cfg = base.clone();
                    cfg.thresholds = thresholds;
                    self.points.push((label, cfg));
                }
            }
        }
        self
    }

    /// Add all four cumulative pruning variants over `base`, labeled by
    /// [`PruningConfig::name`] (`basic`, `flipping`, …).
    pub fn pruning_variants(mut self, base: &FlipperConfig) -> Self {
        for pruning in PruningConfig::VARIANTS {
            let mut cfg = base.clone();
            cfg.pruning = pruning;
            self.points.push((pruning.name().to_string(), cfg));
        }
        self
    }

    /// Add the engine × threads matrix over `base`, labeled
    /// `{engine}/t{threads}`.
    pub fn engine_threads(
        mut self,
        base: &FlipperConfig,
        engines: &[CountingEngine],
        threads: &[usize],
    ) -> Self {
        for &engine in engines {
            for &t in threads {
                let mut cfg = base.clone();
                cfg.engine = engine;
                cfg.threads = t;
                self.points.push((format!("{}/t{t}", engine.name()), cfg));
            }
        }
        self
    }

    /// Number of points queued so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Validate every configuration, run every point, and return the
    /// labeled results in submission order.
    ///
    /// Validation happens before any mining starts, so a bad grid point
    /// fails fast instead of wasting the earlier runs. Violations surface
    /// as [`FlipperError::Config`] — the same category
    /// [`Session::mine`](crate::Session::mine) reports for the identical
    /// configuration, so frontends can map config failures uniformly.
    ///
    /// Points whose result-determining fields (`result_key`) match an
    /// earlier point are not re-mined: they receive the first point's
    /// result and carry [`SweepRun::duplicate_of`] naming it. An
    /// engine × thread matrix therefore mines exactly once.
    pub fn run(self) -> Result<Vec<SweepRun>, FlipperError> {
        Ok(self.execute(None)?.runs)
    }

    /// [`run`](Sweep::run) against a [`SweepJournal`]: points the journal
    /// already records are **skipped** and surface as
    /// [`SweepOutcome::restored`] summaries; the remainder mine normally,
    /// each appended to the journal (and flushed) the moment it completes.
    /// A sweep killed mid-run — cancelled, timed out, OOM-killed — therefore
    /// resumes from its last completed point instead of restarting.
    pub fn run_checkpointed(self, journal: &SweepJournal) -> Result<SweepOutcome, FlipperError> {
        self.execute(Some(journal))
    }

    fn execute(self, journal: Option<&SweepJournal>) -> Result<SweepOutcome, FlipperError> {
        for (_, cfg) in &self.points {
            cfg.validate()?;
        }
        let session = self.session;
        // Restore already-completed points from the journal; the rest stay
        // live. A point's journal key covers its label *and* its
        // result-determining fields, so an edited grid never restores a
        // stale summary.
        let mut restored: Vec<CheckpointRow> = Vec::new();
        let mut live: Vec<(&(String, FlipperConfig), u64)> = Vec::new();
        for point in &self.points {
            let key = point_key(&point.0, &result_key(&point.1));
            match journal.and_then(|j| j.completed(key)) {
                Some(row) => restored.push(row.clone()),
                None => live.push((point, key)),
            }
        }
        // Partition into unique points (mined) and duplicates (reused):
        // per point, the slot of its result in the unique-result vector,
        // plus the index of the original point when it is a repeat.
        let mut first_of: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        let mut unique: Vec<(&(String, FlipperConfig), u64)> = Vec::new();
        let mut assignment: Vec<(usize, Option<usize>)> = Vec::with_capacity(live.len());
        for (i, &entry) in live.iter().enumerate() {
            match first_of.entry(result_key(&entry.0 .1)) {
                std::collections::btree_map::Entry::Occupied(e) => {
                    let &(orig, slot) = e.get();
                    assignment.push((slot, Some(orig)));
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((i, unique.len()));
                    assignment.push((unique.len(), None));
                    unique.push(entry);
                }
            }
        }
        let token = self.token;
        let results: Vec<MiningResult> = {
            // Hold the read lock across the whole sweep: every job seeds
            // from the same cache snapshot, concurrently.
            let seeds = self.seed_supports.then(|| session.seeds_read());
            let _sweep_span = flipper_obs::span("sweep.run")
                .arg("points", self.points.len() as u64)
                .arg("unique", unique.len() as u64);
            exec::try_map_slice_chunks(self.jobs, &unique, |chunk| {
                chunk
                    .iter()
                    .map(|&(point, key)| {
                        let (label, cfg) = point;
                        if let Some(t) = token {
                            t.check()?;
                        }
                        let _point_span = flipper_obs::span_labeled("sweep.point", label);
                        // Trap per point: one panicking configuration fails
                        // the sweep typed, after every worker has joined and
                        // flushed — it cannot abort the process.
                        let result = flipper_guard::trap("sweep.point", || match &seeds {
                            Some(s) => {
                                mine_with_view_seeded(session.taxonomy(), session.view(), cfg, s)
                            }
                            None => mine_with_view(session.taxonomy(), session.view(), cfg),
                        })?;
                        if let Some(j) = journal {
                            j.record(key, &summary_row(label, &result))?;
                        }
                        Ok(result)
                    })
                    .collect::<Result<Vec<_>, FlipperError>>()
            })?
            .into_iter()
            .flatten()
            .collect()
        };
        if self.seed_supports {
            for result in &results {
                session.absorb_seeded(result);
            }
        }
        // Journal the duplicates too (they completed by reuse), so a
        // resumed sweep restores them instead of re-deriving the original.
        if let Some(j) = journal {
            for (&(point, key), &(slot, orig)) in live.iter().zip(&assignment) {
                if orig.is_some() {
                    j.record(key, &summary_row(&point.0, &results[slot]))?;
                }
            }
        }
        let runs = live
            .iter()
            .zip(assignment)
            .map(|(&(point, _), (slot, orig))| SweepRun {
                label: point.0.clone(),
                config: point.1.clone(),
                result: results[slot].clone(),
                duplicate_of: orig.map(|i| live[i].0 .0.clone()),
            })
            .collect();
        Ok(SweepOutcome { runs, restored })
    }
}

/// What [`Sweep::run_checkpointed`] returns: the points this invocation
/// actually mined, plus summaries of the points restored from the journal.
/// Restored points deliberately carry summaries only — the journal is a
/// crash-recovery aid, not a second results format; rerun without the
/// journal to regenerate full results.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Newly-mined points, in submission order (journal-restored points
    /// removed).
    pub runs: Vec<SweepRun>,
    /// Points skipped because the journal already records them, in
    /// submission order.
    pub restored: Vec<CheckpointRow>,
}

/// The journal summary of one completed point.
fn summary_row(label: &str, result: &MiningResult) -> CheckpointRow {
    CheckpointRow {
        label: label.to_string(),
        patterns: result.patterns.len() as u64,
        positive: result.total_positive() as u64,
        negative: result.total_negative() as u64,
        candidates: result.stats.candidates_generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Generator;
    use flipper_core::MinSupports;
    use flipper_datagen::planted::PlantedParams;

    fn session() -> Session {
        Session::open(Generator::Planted(PlantedParams::default())).unwrap()
    }

    fn base() -> FlipperConfig {
        FlipperConfig {
            min_support: MinSupports::Counts(vec![5]),
            ..Default::default()
        }
    }

    #[test]
    fn grid_helpers_label_and_order_points() {
        let s = session();
        let sweep = s
            .sweep()
            .thresholds_grid(&base(), &[0.5, 0.3], &[0.1, 0.4])
            .pruning_variants(&base())
            .engine_threads(
                &base(),
                &[CountingEngine::Tidset, CountingEngine::Auto],
                &[1, 2],
            );
        // Grid: (0.5,0.1), (0.5,0.4), (0.3,0.1) — (0.3,0.4) is invalid and
        // skipped. Variants: 4. Matrix: 4.
        assert_eq!(sweep.len(), 3 + 4 + 4);
        assert!(!sweep.is_empty());
        let labels: Vec<String> = sweep.points.iter().map(|(l, _)| l.clone()).collect();
        assert_eq!(labels[0], "g0.5/e0.1");
        assert_eq!(labels[3], "basic");
        assert_eq!(labels[6], "flipping+tpg+sibp");
        assert_eq!(labels[7], "tidset/t1");
        assert_eq!(labels[10], "auto/t2");
    }

    #[test]
    fn sweep_runs_match_single_shot_mining_at_any_job_count() {
        let s = session();
        for jobs in [1usize, 4] {
            let runs = s
                .sweep()
                .with_jobs(jobs)
                .pruning_variants(&base())
                .run()
                .unwrap();
            assert_eq!(runs.len(), 4, "jobs={jobs}");
            for run in &runs {
                let solo = s.mine(&run.config).unwrap();
                assert_eq!(
                    run.result.patterns, solo.patterns,
                    "jobs={jobs} {}",
                    run.label
                );
                assert_eq!(run.result.cells, solo.cells, "jobs={jobs} {}", run.label);
            }
        }
    }

    #[test]
    fn engine_thread_matrix_mines_once_and_flags_duplicates() {
        let s = session();
        let runs = s
            .sweep()
            .engine_threads(
                &base(),
                &[CountingEngine::Tidset, CountingEngine::Bitset],
                &[1, 2],
            )
            .run()
            .unwrap();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].duplicate_of, None, "first point actually mines");
        for run in &runs[1..] {
            assert_eq!(
                run.duplicate_of.as_deref(),
                Some("tidset/t1"),
                "{}: engine/threads never change results",
                run.label
            );
            assert_eq!(run.result.patterns, runs[0].result.patterns);
            assert_eq!(run.result.cells, runs[0].result.cells);
        }
        // Distinct thresholds stay distinct.
        let grid = s
            .sweep()
            .thresholds_grid(&base(), &[0.5, 0.4], &[0.1])
            .run()
            .unwrap();
        assert!(grid.iter().all(|r| r.duplicate_of.is_none()));
    }

    #[test]
    fn seeded_sweeps_match_unseeded_and_hit_the_support_cache() {
        let s = session();
        let grid = |seed: bool| {
            s.sweep()
                .with_seeding(seed)
                .thresholds_grid(&base(), &[0.5, 0.3], &[0.1, 0.2])
                .run()
                .unwrap()
        };
        let cold = grid(true);
        assert!(s.support_cache_len() > 0, "sweep deposits counted supports");
        let warm = grid(true);
        let stats = s.support_cache_stats();
        assert!(
            stats.seed_hits > 0,
            "second sweep must be answered from the cache: {stats:?}"
        );
        let unseeded = grid(false);
        for ((c, w), u) in cold.iter().zip(&warm).zip(&unseeded) {
            assert_eq!(c.result.patterns, w.result.patterns, "{}", c.label);
            assert_eq!(c.result.patterns, u.result.patterns, "{}", c.label);
            assert_eq!(c.result.cells, w.result.cells, "{}", c.label);
            assert_eq!(c.result.cells, u.result.cells, "{}", c.label);
        }
        s.clear_support_cache();
        assert_eq!(s.support_cache_len(), 0);
    }

    #[test]
    fn invalid_point_fails_fast_as_a_config_error() {
        let s = session();
        let mut bad = base();
        bad.min_support = MinSupports::Fractions(vec![]);
        // Same category Session::mine reports for the same config.
        let err = s.sweep().add("broken", bad.clone()).run().unwrap_err();
        assert!(matches!(err, FlipperError::Config(_)));
        assert!(matches!(s.mine(&bad).unwrap_err(), FlipperError::Config(_)));
    }

    #[test]
    fn empty_sweep_returns_no_runs() {
        let s = session();
        assert!(s.sweep().run().unwrap().is_empty());
    }

    #[test]
    fn live_token_changes_nothing_and_interrupted_tokens_surface_typed() {
        let s = session();
        let live = CancelToken::new();
        let guarded = s
            .sweep()
            .with_token(&live)
            .pruning_variants(&base())
            .run()
            .unwrap();
        let plain = s.sweep().pruning_variants(&base()).run().unwrap();
        assert_eq!(guarded.len(), plain.len());
        for (g, p) in guarded.iter().zip(&plain) {
            assert_eq!(g.result.patterns, p.result.patterns, "{}", g.label);
            assert_eq!(g.result.cells, p.result.cells, "{}", g.label);
        }

        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = s
            .sweep()
            .with_token(&cancelled)
            .pruning_variants(&base())
            .run()
            .unwrap_err();
        assert!(matches!(err, FlipperError::Cancelled), "{err}");
        assert_eq!(err.exit_code(), 3);

        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        let err = s
            .sweep()
            .with_token(&expired)
            .pruning_variants(&base())
            .run()
            .unwrap_err();
        assert!(matches!(err, FlipperError::Timeout), "{err}");
    }

    #[test]
    fn cancelled_sweep_checkpoints_progress_and_resumes() {
        let s = session();
        let dir = std::env::temp_dir().join(format!("flipper-sweep-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt");
        let _ = std::fs::remove_file(&path);

        // First attempt: single-job for a deterministic interruption point —
        // two points complete, the third check cancels.
        let journal = SweepJournal::open(&path, &s).unwrap();
        let token = CancelToken::cancel_after(3);
        let err = s
            .sweep()
            .with_jobs(1)
            .with_token(&token)
            .pruning_variants(&base())
            .run_checkpointed(&journal)
            .unwrap_err();
        assert!(matches!(err, FlipperError::Cancelled), "{err}");
        assert_eq!(
            journal.completed_points(),
            0,
            "in-memory view is a snapshot at open"
        );
        drop(journal);

        // Resume: reopen the journal, completed points restore as summaries,
        // the rest mine.
        let journal = SweepJournal::open(&path, &s).unwrap();
        let done = journal.completed_points();
        assert_eq!(done, 2, "two points completed before the cancellation");
        let outcome = s
            .sweep()
            .pruning_variants(&base())
            .run_checkpointed(&journal)
            .unwrap();
        assert_eq!(outcome.restored.len(), done);
        assert_eq!(outcome.runs.len(), 4 - done);
        let mut labels: Vec<&str> = outcome
            .restored
            .iter()
            .map(|r| r.label.as_str())
            .chain(outcome.runs.iter().map(|r| r.label.as_str()))
            .collect();
        labels.sort_unstable();
        assert_eq!(
            labels,
            ["basic", "flipping", "flipping+tpg", "flipping+tpg+sibp"]
        );
        // Restored summaries match what a fresh solo mine reports.
        for row in &outcome.restored {
            let pruning = PruningConfig::VARIANTS
                .into_iter()
                .find(|p| p.name() == row.label)
                .unwrap();
            let mut cfg = base();
            cfg.pruning = pruning;
            let solo = s.mine(&cfg).unwrap();
            assert_eq!(row.patterns, solo.patterns.len() as u64, "{}", row.label);
            assert_eq!(row.positive, solo.total_positive() as u64, "{}", row.label);
            assert_eq!(row.negative, solo.total_negative() as u64, "{}", row.label);
        }

        // A third pass restores everything and mines nothing.
        let journal = SweepJournal::open(&path, &s).unwrap();
        let outcome = s
            .sweep()
            .pruning_variants(&base())
            .run_checkpointed(&journal)
            .unwrap();
        assert!(outcome.runs.is_empty());
        assert_eq!(outcome.restored.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_duplicates_are_journaled_too() {
        let s = session();
        let dir = std::env::temp_dir().join(format!("flipper-sweep-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dups.ckpt");
        let _ = std::fs::remove_file(&path);

        let journal = SweepJournal::open(&path, &s).unwrap();
        let outcome = s
            .sweep()
            .engine_threads(&base(), &[CountingEngine::Tidset], &[1, 2])
            .run_checkpointed(&journal)
            .unwrap();
        assert_eq!(outcome.runs.len(), 2);
        assert_eq!(outcome.runs[1].duplicate_of.as_deref(), Some("tidset/t1"));

        let journal = SweepJournal::open(&path, &s).unwrap();
        assert_eq!(
            journal.completed_points(),
            2,
            "the duplicate is recorded too"
        );
        let outcome = s
            .sweep()
            .engine_threads(&base(), &[CountingEngine::Tidset], &[1, 2])
            .run_checkpointed(&journal)
            .unwrap();
        assert!(outcome.runs.is_empty());
        assert_eq!(outcome.restored.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
