//! Parameter sweeps: many labeled configurations against one session.
//!
//! Tuning γ/ε, comparing pruning variants and benchmarking engine × thread
//! matrices all used to be hand-rolled loops that re-ingested the dataset
//! per point. A [`Sweep`] runs any number of [`FlipperConfig`]s against the
//! session's one cached view, sharding *runs* (not just candidate batches)
//! over `flipper_data::exec` workers, and returns labeled results in
//! submission order — each bit-identical to calling
//! [`Session::mine`](crate::Session::mine) with that configuration alone.

use crate::error::FlipperError;
use crate::session::Session;
use flipper_core::{mine_with_view, FlipperConfig, MiningResult, PruningConfig};
use flipper_data::{exec, CountingEngine};
use flipper_measures::Thresholds;

/// One γ/ε grid point: `Some((label, thresholds))` when the pair satisfies
/// the paper's `ε < γ` constraint, `None` otherwise. The single source of
/// the grid skip rule and the `g{γ}/e{ε}` label format — shared by
/// [`Sweep::thresholds_grid`] and the CLI `sweep` subcommand so their
/// machine-readable labels can never diverge.
pub fn threshold_point(gamma: f64, epsilon: f64) -> Option<(String, Thresholds)> {
    (epsilon < gamma).then(|| {
        (
            format!("g{gamma}/e{epsilon}"),
            Thresholds { gamma, epsilon },
        )
    })
}

/// One completed sweep point.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The label attached when the point was added.
    pub label: String,
    /// The exact configuration that ran.
    pub config: FlipperConfig,
    /// Its mining result.
    pub result: MiningResult,
}

/// Builder for a labeled set of mining runs over one [`Session`].
///
/// Points are added either individually ([`add`](Sweep::add)) or through
/// the grid helpers; [`run`](Sweep::run) validates every configuration up
/// front, executes them (optionally in parallel), and returns one
/// [`SweepRun`] per point in submission order.
///
/// ```
/// use flipper_api::{Generator, Session, FlipperConfig, MinSupports};
/// use flipper_datagen::planted::PlantedParams;
///
/// let session = Session::open(Generator::Planted(PlantedParams::default()))?;
/// let base = FlipperConfig {
///     min_support: MinSupports::Counts(vec![5]),
///     ..Default::default()
/// };
/// let runs = session
///     .sweep()
///     .pruning_variants(&base)
///     .run()?;
/// assert_eq!(runs.len(), 4);
/// // Every variant finds the same planted patterns.
/// assert!(runs.windows(2).all(|w| w[0].result.patterns == w[1].result.patterns));
/// # Ok::<(), flipper_api::FlipperError>(())
/// ```
#[derive(Debug)]
pub struct Sweep<'s> {
    session: &'s Session,
    points: Vec<(String, FlipperConfig)>,
    jobs: usize,
}

impl<'s> Sweep<'s> {
    /// Start an empty sweep over `session` (usually via
    /// [`Session::sweep`](crate::Session::sweep)).
    pub fn new(session: &'s Session) -> Self {
        Sweep {
            session,
            points: Vec::new(),
            jobs: 1,
        }
    }

    /// Shard the sweep's *runs* over `jobs` scoped workers (`0` =
    /// auto-detect, `1` = sequential). Independent of each run's own
    /// `cfg.threads`; prefer run-level parallelism for grids of many small
    /// runs and config-level threads for few large ones.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Add one labeled configuration.
    pub fn add(mut self, label: impl Into<String>, config: FlipperConfig) -> Self {
        self.points.push((label.into(), config));
        self
    }

    /// Add the γ × ε grid over `base`: one point per pair with
    /// `epsilon < gamma` (invalid pairs are skipped — a rectangular grid
    /// over the paper's `0 ≤ ε < γ ≤ 1` constraint is always triangular),
    /// labeled `g{γ}/e{ε}`.
    pub fn thresholds_grid(
        mut self,
        base: &FlipperConfig,
        gammas: &[f64],
        epsilons: &[f64],
    ) -> Self {
        for &gamma in gammas {
            for &epsilon in epsilons {
                if let Some((label, thresholds)) = threshold_point(gamma, epsilon) {
                    let mut cfg = base.clone();
                    cfg.thresholds = thresholds;
                    self.points.push((label, cfg));
                }
            }
        }
        self
    }

    /// Add all four cumulative pruning variants over `base`, labeled by
    /// [`PruningConfig::name`] (`basic`, `flipping`, …).
    pub fn pruning_variants(mut self, base: &FlipperConfig) -> Self {
        for pruning in PruningConfig::VARIANTS {
            let mut cfg = base.clone();
            cfg.pruning = pruning;
            self.points.push((pruning.name().to_string(), cfg));
        }
        self
    }

    /// Add the engine × threads matrix over `base`, labeled
    /// `{engine}/t{threads}`.
    pub fn engine_threads(
        mut self,
        base: &FlipperConfig,
        engines: &[CountingEngine],
        threads: &[usize],
    ) -> Self {
        for &engine in engines {
            for &t in threads {
                let mut cfg = base.clone();
                cfg.engine = engine;
                cfg.threads = t;
                self.points.push((format!("{}/t{t}", engine.name()), cfg));
            }
        }
        self
    }

    /// Number of points queued so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Validate every configuration, run every point, and return the
    /// labeled results in submission order.
    ///
    /// Validation happens before any mining starts, so a bad grid point
    /// fails fast instead of wasting the earlier runs. Violations surface
    /// as [`FlipperError::Config`] — the same category
    /// [`Session::mine`](crate::Session::mine) reports for the identical
    /// configuration, so frontends can map config failures uniformly.
    pub fn run(self) -> Result<Vec<SweepRun>, FlipperError> {
        for (_, cfg) in &self.points {
            cfg.validate()?;
        }
        let session = self.session;
        let results = exec::map_slice_chunks(self.jobs, &self.points, |chunk| {
            chunk
                .iter()
                .map(|(_, cfg)| mine_with_view(session.taxonomy(), session.view(), cfg))
                .collect::<Vec<_>>()
        });
        Ok(self
            .points
            .into_iter()
            .zip(results.into_iter().flatten())
            .map(|((label, config), result)| SweepRun {
                label,
                config,
                result,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Generator;
    use flipper_core::MinSupports;
    use flipper_datagen::planted::PlantedParams;

    fn session() -> Session {
        Session::open(Generator::Planted(PlantedParams::default())).unwrap()
    }

    fn base() -> FlipperConfig {
        FlipperConfig {
            min_support: MinSupports::Counts(vec![5]),
            ..Default::default()
        }
    }

    #[test]
    fn grid_helpers_label_and_order_points() {
        let s = session();
        let sweep = s
            .sweep()
            .thresholds_grid(&base(), &[0.5, 0.3], &[0.1, 0.4])
            .pruning_variants(&base())
            .engine_threads(
                &base(),
                &[CountingEngine::Tidset, CountingEngine::Auto],
                &[1, 2],
            );
        // Grid: (0.5,0.1), (0.5,0.4), (0.3,0.1) — (0.3,0.4) is invalid and
        // skipped. Variants: 4. Matrix: 4.
        assert_eq!(sweep.len(), 3 + 4 + 4);
        assert!(!sweep.is_empty());
        let labels: Vec<String> = sweep.points.iter().map(|(l, _)| l.clone()).collect();
        assert_eq!(labels[0], "g0.5/e0.1");
        assert_eq!(labels[3], "basic");
        assert_eq!(labels[6], "flipping+tpg+sibp");
        assert_eq!(labels[7], "tidset/t1");
        assert_eq!(labels[10], "auto/t2");
    }

    #[test]
    fn sweep_runs_match_single_shot_mining_at_any_job_count() {
        let s = session();
        for jobs in [1usize, 4] {
            let runs = s
                .sweep()
                .with_jobs(jobs)
                .pruning_variants(&base())
                .run()
                .unwrap();
            assert_eq!(runs.len(), 4, "jobs={jobs}");
            for run in &runs {
                let solo = s.mine(&run.config).unwrap();
                assert_eq!(
                    run.result.patterns, solo.patterns,
                    "jobs={jobs} {}",
                    run.label
                );
                assert_eq!(run.result.cells, solo.cells, "jobs={jobs} {}", run.label);
            }
        }
    }

    #[test]
    fn invalid_point_fails_fast_as_a_config_error() {
        let s = session();
        let mut bad = base();
        bad.min_support = MinSupports::Fractions(vec![]);
        // Same category Session::mine reports for the same config.
        let err = s.sweep().add("broken", bad.clone()).run().unwrap_err();
        assert!(matches!(err, FlipperError::Config(_)));
        assert!(matches!(s.mine(&bad).unwrap_err(), FlipperError::Config(_)));
    }

    #[test]
    fn empty_sweep_returns_no_runs() {
        let s = session();
        assert!(s.sweep().run().unwrap().is_empty());
    }
}
