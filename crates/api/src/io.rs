//! Dataset file I/O: format detection, loading and writing.
//!
//! [`Session`](crate::Session) covers the mining path; this module covers
//! the dataset-shuffling paths around it (`flipper generate`, `flipper
//! convert`, `flipper stats`): sniff a file's format by magic bytes, load a
//! full [`Dataset`] from either format, write one in either format. All
//! errors are [`FlipperError`]s.

use crate::error::FlipperError;
use flipper_data::format::{read_dataset, write_dataset, Dataset};
use flipper_store::write_fbin;
use flipper_taxonomy::RebalancePolicy;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The two on-disk dataset formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFormat {
    /// The line-oriented text interchange format (`flipper_data::format`).
    Text,
    /// The FBIN chunked columnar binary format (`flipper-store`).
    Fbin,
}

impl FileFormat {
    /// Short name (`text` / `fbin`).
    pub fn name(self) -> &'static str {
        match self {
            FileFormat::Text => "text",
            FileFormat::Fbin => "fbin",
        }
    }

    /// Parse a format name as used by CLI flags.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "text" => Some(FileFormat::Text),
            "fbin" => Some(FileFormat::Fbin),
            _ => None,
        }
    }

    /// The format a `.fbin` extension implies (FBIN), defaulting to text.
    pub fn from_extension(path: &Path) -> Self {
        if path.extension().is_some_and(|e| e == "fbin") {
            FileFormat::Fbin
        } else {
            FileFormat::Text
        }
    }
}

/// Sniff a dataset file's format by its magic bytes.
pub fn detect_format(path: impl AsRef<Path>) -> Result<FileFormat, FlipperError> {
    let path = path.as_ref();
    let mut file = std::fs::File::open(path)
        .map_err(|e| FlipperError::io(format!("open {}", path.display()), e))?;
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FlipperError::io(format!("read {}", path.display()), e)),
        }
    }
    Ok(if flipper_store::is_fbin(&prefix[..filled]) {
        FileFormat::Fbin
    } else {
        FileFormat::Text
    })
}

/// Load a full [`Dataset`] from `path`, auto-detecting the format by magic
/// bytes — a binary file handed to a text-era script still loads instead of
/// dying with a line-1 parse error (and vice versa).
pub fn load_path(path: impl AsRef<Path>) -> Result<Dataset, FlipperError> {
    let path = path.as_ref();
    let format = detect_format(path)?;
    let file = std::fs::File::open(path)
        .map_err(|e| FlipperError::io(format!("open {}", path.display()), e))?;
    let reader = BufReader::new(file);
    match format {
        FileFormat::Fbin => Ok(flipper_store::read_fbin(reader)?),
        FileFormat::Text => Ok(read_dataset(reader, RebalancePolicy::LeafCopy)?),
    }
}

/// Write `ds` into `w` in `format`.
pub fn write_to<W: Write>(w: &mut W, ds: &Dataset, format: FileFormat) -> Result<(), FlipperError> {
    match format {
        // The blanket FormatError conversion labels I/O failures as read
        // errors (every other conversion site is a reader); this is the
        // one write path, so restore the correct direction.
        FileFormat::Text => write_dataset(w, ds).map_err(|e| match e {
            flipper_data::format::FormatError::Io(io) => {
                FlipperError::io("writing text dataset", io)
            }
            other => other.into(),
        })?,
        FileFormat::Fbin => write_fbin(w, ds)?,
    }
    Ok(())
}

/// Write `ds` to the file at `path` in `format` (buffered, flushed).
pub fn write_path(
    path: impl AsRef<Path>,
    ds: &Dataset,
    format: FileFormat,
) -> Result<(), FlipperError> {
    let path = path.as_ref();
    let file = std::fs::File::create(path)
        .map_err(|e| FlipperError::io(format!("create {}", path.display()), e))?;
    let mut w = BufWriter::new(file);
    write_to(&mut w, ds, format)?;
    w.flush()
        .map_err(|e| FlipperError::io(format!("write {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Generator;
    use flipper_datagen::planted::PlantedParams;

    #[test]
    fn format_names_parse_and_extensions_default() {
        assert_eq!(FileFormat::parse("text"), Some(FileFormat::Text));
        assert_eq!(FileFormat::parse("fbin"), Some(FileFormat::Fbin));
        assert_eq!(FileFormat::parse("parquet"), None);
        assert_eq!(
            FileFormat::from_extension(Path::new("x.fbin")),
            FileFormat::Fbin
        );
        assert_eq!(
            FileFormat::from_extension(Path::new("x.txt")),
            FileFormat::Text
        );
        assert_eq!(FileFormat::Text.name(), "text");
        assert_eq!(FileFormat::Fbin.name(), "fbin");
    }

    #[test]
    fn roundtrip_both_formats_by_detection() {
        let dir = std::env::temp_dir().join(format!("flipper-api-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = Generator::Planted(PlantedParams::default()).dataset();
        for format in [FileFormat::Text, FileFormat::Fbin] {
            let path = dir.join(format!("toy-{}", format.name()));
            write_path(&path, &ds, format).unwrap();
            assert_eq!(detect_format(&path).unwrap(), format);
            let back = load_path(&path).unwrap();
            assert_eq!(back.taxonomy, ds.taxonomy);
            assert_eq!(back.db, ds.db);
        }
        let err = load_path(dir.join("missing")).unwrap_err();
        assert!(matches!(err, FlipperError::Io { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
