//! Typed data sources: everything a [`Session`](crate::Session) can ingest.
//!
//! A [`DataSource`] funnels one dataset — wherever it lives — into the one
//! ingestion path the whole stack shares: a [`Taxonomy`] plus a
//! mining-ready [`MultiLevelView`]. File paths are sniffed by magic bytes
//! (FBIN binary vs text interchange), FBIN inputs stream chunk by chunk
//! without ever materializing the raw database, and the five dataset
//! generators plug in through [`Generator`]. Sources that *do* materialize
//! a [`TransactionDb`] hand it to the session too, unlocking the
//! database-resampling analyses (bootstrap stability).

use crate::error::FlipperError;
use flipper_data::format::{read_dataset, Dataset};
use flipper_data::{MultiLevelView, TransactionDb};
use flipper_datagen::planted::{self, PlantedData, PlantedParams};
use flipper_datagen::quest::{self, QuestData, QuestParams};
use flipper_datagen::surrogate::{self, SurrogateData};
use flipper_store::{stream_view, FbinReader};
use flipper_taxonomy::{RebalancePolicy, Taxonomy};
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

/// The product of ingesting a [`DataSource`]: everything a session caches.
#[derive(Debug)]
pub struct Ingested {
    /// The dataset taxonomy.
    pub taxonomy: Taxonomy,
    /// The multi-level projection the miner runs against.
    pub view: MultiLevelView,
    /// The raw transaction database, when the source materialized one
    /// (`None` for streamed FBIN ingestion — that is the point of
    /// streaming).
    pub database: Option<TransactionDb>,
    /// Human-readable description of where the data came from.
    pub origin: String,
}

/// Anything a [`Session`](crate::Session) can ingest exactly once.
///
/// `ingest` consumes the source: a streamed reader can only be read once,
/// and consuming uniformly keeps the contract honest for every impl.
/// Borrowed impls (`&Dataset`, `&SurrogateData`, …) exist for callers that
/// need to keep the original around — they clone what the session must own.
pub trait DataSource {
    /// Human-readable description of the source, used in reports.
    fn describe(&self) -> String;

    /// Ingest into a taxonomy + view (+ database when materialized),
    /// sharding any projection work over `threads` scoped workers
    /// (`0` = auto-detect, `1` = sequential). The resulting view is
    /// bit-identical at every thread count.
    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError>
    where
        Self: Sized;
}

/// Build an [`Ingested`] from a materialized dataset, sharding the
/// projection over `threads` workers.
fn ingest_dataset(ds: Dataset, origin: String, threads: usize) -> Ingested {
    let view = MultiLevelView::build_with_threads(&ds.db, &ds.taxonomy, threads);
    Ingested {
        taxonomy: ds.taxonomy,
        view,
        database: Some(ds.db),
        origin,
    }
}

/// A dataset file on disk, format-sniffed by magic bytes: FBIN files are
/// streamed chunk by chunk through the `flipper-store` reader, anything
/// else goes through the text parser.
#[derive(Debug, Clone)]
pub struct PathSource {
    path: PathBuf,
    policy: RebalancePolicy,
}

impl PathSource {
    /// Source the file at `path` with the CLI's default rebalancing policy
    /// ([`RebalancePolicy::LeafCopy`], matching the paper's experiments).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        PathSource {
            path: path.into(),
            policy: RebalancePolicy::LeafCopy,
        }
    }

    /// Override the rebalancing policy applied to unbalanced taxonomies.
    pub fn with_policy(mut self, policy: RebalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The underlying path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl DataSource for PathSource {
    fn describe(&self) -> String {
        self.path.display().to_string()
    }

    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
        let origin = self.describe();
        let open = |path: &Path| {
            std::fs::File::open(path)
                .map_err(|e| FlipperError::io(format!("open {}", path.display()), e))
        };
        match crate::io::detect_format(&self.path)? {
            crate::io::FileFormat::Fbin => {
                let reader = FbinReader::new(BufReader::new(open(&self.path)?))?;
                let (taxonomy, view) = stream_view(reader, threads)?;
                Ok(Ingested {
                    taxonomy,
                    view,
                    database: None,
                    origin,
                })
            }
            crate::io::FileFormat::Text => {
                let ds = read_dataset(BufReader::new(open(&self.path)?), self.policy)?;
                Ok(ingest_dataset(ds, origin, threads))
            }
        }
    }
}

/// A text-format dataset from any buffered reader.
#[derive(Debug)]
pub struct TextSource<R> {
    reader: R,
    policy: RebalancePolicy,
}

impl<R: BufRead> TextSource<R> {
    /// Source the text dataset behind `reader`.
    pub fn new(reader: R) -> Self {
        TextSource {
            reader,
            policy: RebalancePolicy::LeafCopy,
        }
    }

    /// Override the rebalancing policy applied to unbalanced taxonomies.
    pub fn with_policy(mut self, policy: RebalancePolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl<R: BufRead> DataSource for TextSource<R> {
    fn describe(&self) -> String {
        "text stream".to_string()
    }

    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
        let origin = self.describe();
        let ds = read_dataset(self.reader, self.policy)?;
        Ok(ingest_dataset(ds, origin, threads))
    }
}

/// An FBIN binary dataset from any reader, ingested by streaming: chunks
/// are decoded and projected one at a time, the raw database never exists
/// in memory.
#[derive(Debug)]
pub struct FbinSource<R> {
    reader: R,
}

impl<R: Read> FbinSource<R> {
    /// Source the FBIN stream behind `reader`.
    pub fn new(reader: R) -> Self {
        FbinSource { reader }
    }
}

impl<R: Read> DataSource for FbinSource<R> {
    fn describe(&self) -> String {
        "fbin stream".to_string()
    }

    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
        let origin = self.describe();
        let reader = FbinReader::new(self.reader)?;
        let (taxonomy, view) = stream_view(reader, threads)?;
        Ok(Ingested {
            taxonomy,
            view,
            database: None,
            origin,
        })
    }
}

impl DataSource for Dataset {
    fn describe(&self) -> String {
        format!(
            "in-memory dataset ({} transactions, {} nodes)",
            self.db.len(),
            self.taxonomy.node_count()
        )
    }

    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
        let origin = self.describe();
        Ok(ingest_dataset(self, origin, threads))
    }
}

impl DataSource for &Dataset {
    fn describe(&self) -> String {
        Dataset::describe(self)
    }

    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
        self.clone().ingest(threads)
    }
}

impl DataSource for (Taxonomy, TransactionDb) {
    fn describe(&self) -> String {
        format!(
            "in-memory dataset ({} transactions, {} nodes)",
            self.1.len(),
            self.0.node_count()
        )
    }

    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
        Dataset {
            taxonomy: self.0,
            db: self.1,
        }
        .ingest(threads)
    }
}

macro_rules! borrow_datagen_source {
    ($ty:ty, $label:expr) => {
        impl DataSource for &$ty {
            fn describe(&self) -> String {
                format!("{} ({} transactions)", $label, self.db.len())
            }

            fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
                let origin = self.describe();
                Ok(ingest_dataset(
                    Dataset {
                        taxonomy: self.taxonomy.clone(),
                        db: self.db.clone(),
                    },
                    origin,
                    threads,
                ))
            }
        }
    };
}

borrow_datagen_source!(SurrogateData, "surrogate");
borrow_datagen_source!(QuestData, "quest");
borrow_datagen_source!(PlantedData, "planted");

/// The five dataset generators of `flipper-datagen`, packaged as a source:
/// generating and ingesting are one step, so a benchmark or test can open a
/// session on synthetic data in one line.
#[derive(Debug, Clone)]
pub enum Generator {
    /// The Srikant–Agrawal synthetic generator (§5.1 performance study).
    Quest(QuestParams),
    /// Ground-truth datasets with provable planted flipping patterns.
    Planted(PlantedParams),
    /// The GROCERIES surrogate (§5.2, Fig. 10).
    Groceries {
        /// RNG seed.
        seed: u64,
    },
    /// The CENSUS surrogate (§5.2, Fig. 11).
    Census {
        /// RNG seed.
        seed: u64,
    },
    /// The MEDLINE surrogate (§5.2, Fig. 12) at `scale` of the paper's
    /// 640K-citation working set.
    Medline {
        /// Fraction of the full corpus size (1.0 ≈ 640K citations).
        scale: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl Generator {
    /// Short name of the generator kind, as used by `flipper generate`.
    pub fn name(&self) -> &'static str {
        match self {
            Generator::Quest(_) => "quest",
            Generator::Planted(_) => "planted",
            Generator::Groceries { .. } => "groceries",
            Generator::Census { .. } => "census",
            Generator::Medline { .. } => "medline",
        }
    }

    /// Run the generator and package the output as an interchange
    /// [`Dataset`] (ground-truth metadata dropped).
    pub fn dataset(&self) -> Dataset {
        match self {
            Generator::Quest(params) => quest::generate(params).into_dataset(),
            Generator::Planted(params) => planted::generate(params).into_dataset(),
            Generator::Groceries { seed } => surrogate::groceries(*seed).into_dataset(),
            Generator::Census { seed } => surrogate::census(*seed).into_dataset(),
            Generator::Medline { scale, seed } => surrogate::medline(*scale, *seed).into_dataset(),
        }
    }
}

impl DataSource for Generator {
    fn describe(&self) -> String {
        format!("generator:{}", self.name())
    }

    fn ingest(self, threads: usize) -> Result<Ingested, FlipperError> {
        let origin = self.describe();
        Ok(ingest_dataset(self.dataset(), origin, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipper_data::format::write_dataset;
    use flipper_store::to_fbin_bytes;

    fn toy() -> Dataset {
        Generator::Planted(PlantedParams::default()).dataset()
    }

    #[test]
    fn dataset_and_tuple_sources_materialize_the_db() {
        let ds = toy();
        let ing = (&ds).ingest(1).unwrap();
        assert!(ing.database.is_some());
        assert_eq!(ing.taxonomy, ds.taxonomy);
        assert_eq!(ing.view, MultiLevelView::build(&ds.db, &ds.taxonomy));
        let ing2 = (ds.taxonomy.clone(), ds.db.clone()).ingest(1).unwrap();
        assert_eq!(ing2.view, ing.view);
        assert!(ing.origin.contains("in-memory"));
    }

    #[test]
    fn text_and_fbin_streams_agree_with_memory() {
        let ds = toy();
        let reference = MultiLevelView::build(&ds.db, &ds.taxonomy);

        let mut text = Vec::new();
        write_dataset(&mut text, &ds).unwrap();
        let ing = TextSource::new(&text[..]).ingest(1).unwrap();
        assert_eq!(ing.view, reference);
        assert!(ing.database.is_some());

        let fbin = to_fbin_bytes(&ds).unwrap();
        for threads in [1usize, 4] {
            let ing = FbinSource::new(&fbin[..]).ingest(threads).unwrap();
            assert_eq!(ing.view, reference, "threads={threads}");
            assert!(ing.database.is_none(), "fbin ingestion streams");
        }
    }

    #[test]
    fn path_source_sniffs_magic_bytes() {
        let dir = std::env::temp_dir().join(format!("flipper-api-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = toy();
        let reference = MultiLevelView::build(&ds.db, &ds.taxonomy);

        let text_path = dir.join("toy.txt");
        let mut text = Vec::new();
        write_dataset(&mut text, &ds).unwrap();
        std::fs::write(&text_path, &text).unwrap();
        // The extension lies on purpose: detection is by content.
        let fbin_path = dir.join("toy.txt.actually-fbin");
        std::fs::write(&fbin_path, to_fbin_bytes(&ds).unwrap()).unwrap();

        let ing = PathSource::new(&text_path).ingest(1).unwrap();
        assert_eq!(ing.view, reference);
        assert!(ing.database.is_some());
        let ing = PathSource::new(&fbin_path).ingest(1).unwrap();
        assert_eq!(ing.view, reference);
        assert!(ing.database.is_none());

        let err = PathSource::new(dir.join("missing")).ingest(1).unwrap_err();
        assert!(matches!(err, FlipperError::Io { .. }));
        assert!(err.to_string().contains("open"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generators_ingest_and_name_themselves() {
        for generator in [
            Generator::Planted(PlantedParams::default()),
            Generator::Quest(QuestParams::default().with_transactions(50)),
            Generator::Groceries { seed: 1 },
        ] {
            let name = generator.name();
            let ing = generator.ingest(1).unwrap();
            assert!(ing.origin.contains(name));
            assert!(ing.database.is_some());
            assert!(ing.view.num_transactions() > 0, "{name}");
        }
        assert_eq!(Generator::Census { seed: 1 }.name(), "census");
        assert_eq!(
            Generator::Medline {
                scale: 0.01,
                seed: 1
            }
            .name(),
            "medline"
        );
    }
}
