//! The session: ingest once, mine many times.

use crate::error::FlipperError;
use crate::source::DataSource;
use crate::sweep::Sweep;
use flipper_core::stability::{bootstrap_stability, StabilityReport};
use flipper_core::topk::{top_k_with_view, TopKConfig, TopKResult};
use flipper_core::{
    mine_with_view, mine_with_view_guarded, mine_with_view_seeded, mine_with_view_seeded_guarded,
    FlipperConfig, MiningResult,
};
use flipper_data::{CacheStats, MultiLevelView, SupportCache, TransactionDb};
use flipper_guard::CancelToken;
use flipper_store::SalvageReport;
use flipper_taxonomy::Taxonomy;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mining session over one ingested dataset.
///
/// Opening a session pays the ingestion cost — parsing or streaming the
/// source and projecting it to every abstraction level — exactly once; the
/// cached [`MultiLevelView`] then serves any number of [`mine`](Session::mine)
/// calls with different configurations. Results are bit-identical to the
/// single-shot [`flipper_core::mine`] / [`flipper_core::mine_with_view`]
/// paths: `mine` is a thin delegation over the same view type.
///
/// ```
/// use flipper_api::{Generator, Session, FlipperConfig, MinSupports, PruningConfig};
/// use flipper_datagen::planted::PlantedParams;
///
/// let session = Session::open(Generator::Planted(PlantedParams::default()))?;
/// let cfg = FlipperConfig {
///     min_support: MinSupports::Counts(vec![5]),
///     ..Default::default()
/// };
/// // Two runs over one ingestion: full pruning vs the baseline.
/// let full = session.mine(&cfg)?;
/// let basic = session.mine(&cfg.clone().with_pruning(PruningConfig::BASIC))?;
/// assert_eq!(full.patterns, basic.patterns);
/// # Ok::<(), flipper_api::FlipperError>(())
/// ```
#[derive(Debug)]
pub struct Session {
    taxonomy: Taxonomy,
    view: MultiLevelView,
    database: Option<TransactionDb>,
    origin: String,
    /// Session-level support cache: every completed seeded run deposits
    /// its counted supports here, and later seeded runs (or sweeps) answer
    /// matching candidates without re-counting. Supports are facts about
    /// the ingested data alone, so entries are valid for *any*
    /// configuration over this session. Guarded by an `RwLock` so parallel
    /// sweep jobs can read seeds concurrently.
    supports: RwLock<SupportCache>,
    /// What salvage ingestion quarantined, when the session was opened via
    /// [`open_salvage_path`](Session::open_salvage_path). `None` for every
    /// strict open path.
    salvage: Option<SalvageReport>,
}

impl Session {
    /// Open a session by ingesting `source` sequentially. Use
    /// [`open_with_threads`](Session::open_with_threads) to shard the
    /// ingestion-time projection over workers.
    pub fn open(source: impl DataSource) -> Result<Session, FlipperError> {
        Session::open_with_threads(source, 1)
    }

    /// Open a session, sharding ingestion over `threads` scoped workers
    /// (`0` = auto-detect, `1` = sequential). The cached view is
    /// bit-identical at every thread count.
    pub fn open_with_threads(
        source: impl DataSource,
        threads: usize,
    ) -> Result<Session, FlipperError> {
        let ingested = {
            let _span = flipper_obs::span("session.ingest");
            source.ingest(threads)?
        };
        Ok(Session {
            taxonomy: ingested.taxonomy,
            view: ingested.view,
            database: ingested.database,
            origin: ingested.origin,
            supports: RwLock::new(SupportCache::new()),
            salvage: None,
        })
    }

    /// Open a session on a dataset file, format-sniffed by magic bytes
    /// (shorthand for [`PathSource`](crate::PathSource)).
    pub fn open_path(path: impl Into<std::path::PathBuf>) -> Result<Session, FlipperError> {
        Session::open(crate::PathSource::new(path))
    }

    /// Open a session on a **damaged** FBIN file, mining what is readable:
    /// chunks that fail their CRC or decode are quarantined (skipped with a
    /// [`SalvageReport`] entry) instead of failing the whole ingestion, and
    /// a file cut short mid-stream ends gracefully at the last intact
    /// chunk. The report is kept on the session
    /// ([`salvage_report`](Session::salvage_report)) so frontends can print
    /// a degradation notice and stamp machine-readable output.
    ///
    /// Header or dictionary corruption is still fatal — without the
    /// dictionary no chunk can be decoded — as are real I/O errors. Text
    /// datasets are rejected with [`FlipperError::Usage`]: the text parser
    /// already reports the exact failing line, so salvage adds nothing.
    pub fn open_salvage_path(path: impl AsRef<std::path::Path>) -> Result<Session, FlipperError> {
        Session::open_salvage_path_with_threads(path, 1)
    }

    /// [`open_salvage_path`](Session::open_salvage_path), sharding the
    /// ingestion-time projection over `threads` workers.
    pub fn open_salvage_path_with_threads(
        path: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> Result<Session, FlipperError> {
        let path = path.as_ref();
        if crate::io::detect_format(path)? != crate::io::FileFormat::Fbin {
            return Err(FlipperError::usage(format!(
                "salvage applies to FBIN files only, and {} is a text dataset \
                 (the text parser already reports the exact failing line)",
                path.display()
            )));
        }
        let file = std::fs::File::open(path)
            .map_err(|e| FlipperError::io(format!("open {}", path.display()), e))?;
        let (taxonomy, view, report) = {
            let _span = flipper_obs::span("session.ingest");
            flipper_store::salvage_view(std::io::BufReader::new(file), threads)?
        };
        Ok(Session {
            taxonomy,
            view,
            database: None,
            origin: format!("fbin file {} (salvage)", path.display()),
            supports: RwLock::new(SupportCache::new()),
            salvage: Some(report),
        })
    }

    /// The salvage report, when this session was opened via
    /// [`open_salvage_path`](Session::open_salvage_path); `None` for strict
    /// open paths. [`SalvageReport::is_degraded`] distinguishes a clean
    /// salvage (nothing was wrong) from an actually degraded one.
    pub fn salvage_report(&self) -> Option<&SalvageReport> {
        self.salvage.as_ref()
    }

    /// The dataset taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The cached multi-level projection.
    pub fn view(&self) -> &MultiLevelView {
        &self.view
    }

    /// The raw transaction database, when the source materialized one
    /// (`None` after streamed FBIN ingestion).
    pub fn database(&self) -> Option<&TransactionDb> {
        self.database.as_ref()
    }

    /// Human-readable description of where the data came from.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// Number of ingested transactions.
    pub fn num_transactions(&self) -> usize {
        self.view.num_transactions()
    }

    /// Mine flipping patterns under `cfg` against the cached view.
    ///
    /// Validates the configuration first ([`FlipperConfig::validate`]) so a
    /// malformed request surfaces as a typed [`FlipperError::Config`]
    /// instead of a panic deep inside the miner.
    pub fn mine(&self, cfg: &FlipperConfig) -> Result<MiningResult, FlipperError> {
        cfg.validate()?;
        Ok(mine_with_view(&self.taxonomy, &self.view, cfg))
    }

    /// [`mine`](Session::mine) under a [`CancelToken`]: the run checks the
    /// token at cell boundaries and stops early with
    /// [`FlipperError::Cancelled`] / [`FlipperError::Timeout`], and a panic
    /// anywhere inside the miner is trapped into
    /// [`FlipperError::Panicked`] instead of unwinding into the caller.
    /// With a live token the result is bit-identical to
    /// [`mine`](Session::mine) — the guard adds one relaxed atomic load per
    /// cell.
    pub fn mine_guarded(
        &self,
        cfg: &FlipperConfig,
        token: &CancelToken,
    ) -> Result<MiningResult, FlipperError> {
        cfg.validate()?;
        Ok(mine_with_view_guarded(
            &self.taxonomy,
            &self.view,
            cfg,
            token,
        )?)
    }

    /// [`mine_seeded`](Session::mine_seeded) under a [`CancelToken`]; see
    /// [`mine_guarded`](Session::mine_guarded) for the guard semantics. An
    /// interrupted run absorbs nothing into the session support cache.
    pub fn mine_seeded_guarded(
        &self,
        cfg: &FlipperConfig,
        token: &CancelToken,
    ) -> Result<MiningResult, FlipperError> {
        cfg.validate()?;
        let result = {
            let seeds = self.seeds_read();
            mine_with_view_seeded_guarded(&self.taxonomy, &self.view, cfg, &seeds, token)?
        };
        self.absorb_seeded(&result);
        Ok(result)
    }

    /// Mine under `cfg`, seeding support counting from this session's
    /// support cache and depositing the run's counted supports back into
    /// it.
    ///
    /// Patterns, cells, and `flipper-results/v1` bytes are identical to
    /// [`mine`](Session::mine) — supports are configuration-independent
    /// facts about the ingested data, so a cache hit returns exactly the
    /// value counting would have produced. Only the counting cost changes:
    /// [`flipper_core::RunStats::seeded_supports`] reports how many
    /// candidates were answered from the cache.
    pub fn mine_seeded(&self, cfg: &FlipperConfig) -> Result<MiningResult, FlipperError> {
        cfg.validate()?;
        let result = {
            let seeds = self.seeds_read();
            mine_with_view_seeded(&self.taxonomy, &self.view, cfg, &seeds)
        };
        self.absorb_seeded(&result);
        Ok(result)
    }

    /// [`absorb`](Session::absorb) plus seed-probe accounting: a seeded run
    /// probed the cache once per generated candidate and was answered
    /// [`flipper_core::RunStats::seeded_supports`] times.
    pub(crate) fn absorb_seeded(&self, result: &MiningResult) {
        // A fully seeded run counted nothing: every k ≥ 2 support it could
        // deposit came out of this cache, so re-inserting them is pure
        // overhead — skip straight to the probe accounting.
        let fully_seeded = result.stats.candidates_generated > 0
            && result.stats.seeded_supports == result.stats.candidates_generated;
        if !fully_seeded {
            self.absorb(result);
        }
        self.seeds_write().record_seed_round(
            result.stats.candidates_generated,
            result.stats.seeded_supports,
        );
    }

    /// Deposit every `(level, itemset) → support` fact a completed run
    /// established into the session support cache, so later seeded runs
    /// and sweeps skip re-counting them.
    pub fn absorb(&self, result: &MiningResult) {
        let mut cache = self.seeds_write();
        for (h, cell) in &result.evaluated {
            for (set, info) in cell.iter() {
                cache.insert(*h, set, info.support);
            }
        }
    }

    /// Efficiency counters of the session support cache (seed lookups and
    /// hits accumulate over [`mine_seeded`](Session::mine_seeded) and
    /// seeded sweeps).
    pub fn support_cache_stats(&self) -> CacheStats {
        self.seeds_read().stats()
    }

    /// Number of cached `(level, itemset) → support` facts.
    pub fn support_cache_len(&self) -> usize {
        self.seeds_read().len()
    }

    /// Drop every cached support fact and reset the cache counters.
    pub fn clear_support_cache(&self) {
        self.seeds_write().clear();
    }

    /// Read-lock the support cache. Lock poisoning is ignored: the cache
    /// holds plain data whose every state is valid (a half-absorbed run
    /// just means fewer seeds), so a panicked writer cannot corrupt it.
    pub(crate) fn seeds_read(&self) -> RwLockReadGuard<'_, SupportCache> {
        self.supports.read().unwrap_or_else(|e| e.into_inner())
    }

    fn seeds_write(&self) -> RwLockWriteGuard<'_, SupportCache> {
        self.supports.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Top-K most-flipping search ([`flipper_core::topk`]) over the cached
    /// view — works even when the session was ingested by streaming.
    ///
    /// Both the base configuration and the search knobs are validated up
    /// front, so a malformed request surfaces as a typed error instead of
    /// a panic inside the search.
    pub fn top_k(&self, cfg: &TopKConfig) -> Result<TopKResult, FlipperError> {
        // The search derives (γ, ε) per probe and discards base.thresholds,
        // so validate the base with them neutralized — a caller who left
        // garbage in the overridden field is not rejected for it.
        let mut base_check = cfg.base.clone();
        base_check.thresholds = flipper_measures::Thresholds::default();
        base_check.validate()?;
        cfg.validate()
            .map_err(|e| FlipperError::usage(format!("top-k search: {e}")))?;
        Ok(top_k_with_view(&self.taxonomy, &self.view, cfg))
    }

    /// Bootstrap stability screening ([`flipper_core::stability`]): resample
    /// the database `rounds` times and report how often each pattern
    /// reappears.
    ///
    /// Resampling needs the materialized [`TransactionDb`]; a session
    /// ingested from an FBIN stream reports [`FlipperError::Usage`].
    pub fn stability(
        &self,
        cfg: &FlipperConfig,
        rounds: usize,
        seed: u64,
    ) -> Result<StabilityReport, FlipperError> {
        cfg.validate()?;
        let db = self.database.as_ref().ok_or_else(|| {
            FlipperError::usage(
                "bootstrap stability resamples the raw database, but this session \
                 was ingested by streaming and never materialized it; open the \
                 session from a text file or an in-memory dataset instead",
            )
        })?;
        Ok(bootstrap_stability(&self.taxonomy, db, cfg, rounds, seed))
    }

    /// Start building a parameter [`Sweep`] over this session.
    pub fn sweep(&self) -> Sweep<'_> {
        Sweep::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Generator;
    use flipper_core::{mine, MinSupports};
    use flipper_datagen::planted::PlantedParams;

    fn planted_session() -> (flipper_datagen::planted::PlantedData, Session) {
        let data = flipper_datagen::planted::generate(&PlantedParams::default());
        let session = Session::open(&data).unwrap();
        (data, session)
    }

    fn counts_cfg() -> FlipperConfig {
        FlipperConfig {
            min_support: MinSupports::Counts(vec![5]),
            ..Default::default()
        }
    }

    #[test]
    fn mine_matches_single_shot_paths() {
        let (data, session) = planted_session();
        let cfg = counts_cfg();
        let via_session = session.mine(&cfg).unwrap();
        let via_mine = mine(&data.taxonomy, &data.db, &cfg);
        let via_view = mine_with_view(&data.taxonomy, session.view(), &cfg);
        assert_eq!(via_session.patterns, via_mine.patterns);
        assert_eq!(via_session.patterns, via_view.patterns);
        assert_eq!(via_session.cells, via_mine.cells);
        assert_eq!(session.num_transactions(), data.db.len());
    }

    #[test]
    fn repeated_mines_reuse_one_ingestion() {
        let (_, session) = planted_session();
        let cfg = counts_cfg();
        let first = session.mine(&cfg).unwrap();
        let second = session.mine(&cfg).unwrap();
        assert_eq!(first.patterns, second.patterns);
    }

    #[test]
    fn mine_seeded_matches_mine_and_reuses_supports() {
        let (_, session) = planted_session();
        let cfg = counts_cfg();
        let plain = session.mine(&cfg).unwrap();
        let cold = session.mine_seeded(&cfg).unwrap();
        assert_eq!(cold.patterns, plain.patterns);
        assert_eq!(cold.cells, plain.cells);
        assert_eq!(cold.stats.seeded_supports, 0, "cache starts empty");
        assert!(session.support_cache_len() > 0);

        let warm = session.mine_seeded(&cfg).unwrap();
        assert_eq!(warm.patterns, plain.patterns);
        assert_eq!(warm.cells, plain.cells);
        assert!(
            warm.stats.seeded_supports > 0,
            "second seeded run answers candidates from the session cache"
        );
        let stats = session.support_cache_stats();
        assert!(stats.seed_lookups >= stats.seed_hits && stats.seed_hits > 0);

        // Different config, same session: supports are data facts.
        let mut other = counts_cfg();
        other.pruning = flipper_core::PruningConfig::BASIC;
        let seeded_other = session.mine_seeded(&other).unwrap();
        let plain_other = session.mine(&other).unwrap();
        assert_eq!(seeded_other.patterns, plain_other.patterns);
        assert_eq!(seeded_other.cells, plain_other.cells);
    }

    #[test]
    fn bad_config_is_a_typed_error_not_a_panic() {
        let (_, session) = planted_session();
        let mut cfg = counts_cfg();
        cfg.min_support = MinSupports::Fractions(vec![]);
        let err = session.mine(&cfg).unwrap_err();
        assert!(matches!(err, FlipperError::Config(_)));
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn top_k_works_on_streamed_sessions() {
        let data = flipper_datagen::planted::generate(&PlantedParams {
            background_txns: 0,
            ..Default::default()
        });
        let fbin = flipper_store::to_fbin_bytes(&flipper_data::format::Dataset {
            taxonomy: data.taxonomy.clone(),
            db: data.db.clone(),
        })
        .unwrap();
        let session = Session::open(crate::FbinSource::new(&fbin[..])).unwrap();
        assert!(session.database().is_none());
        let r = session
            .top_k(&TopKConfig {
                k: 2,
                base: counts_cfg(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(r.patterns.len(), 2);
        // …but stability needs the materialized db.
        let err = session.stability(&counts_cfg(), 3, 7).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn bad_topk_knobs_are_typed_errors_not_panics() {
        let (_, session) = planted_session();
        for bad in [
            TopKConfig {
                k: 0,
                base: counts_cfg(),
                ..Default::default()
            },
            TopKConfig {
                gamma_start: 0.1,
                gamma_floor: 0.5,
                base: counts_cfg(),
                ..Default::default()
            },
            TopKConfig {
                gamma_step: 1.5,
                base: counts_cfg(),
                ..Default::default()
            },
        ] {
            let err = session.top_k(&bad).unwrap_err();
            assert!(matches!(err, FlipperError::Usage(_)), "{err}");
        }
    }

    #[test]
    fn open_with_threads_caches_an_identical_view() {
        let data = flipper_datagen::planted::generate(&PlantedParams::default());
        let sequential = Session::open(&data).unwrap();
        for threads in [2usize, 4] {
            let sharded = Session::open_with_threads(&data, threads).unwrap();
            assert_eq!(sharded.view(), sequential.view(), "threads={threads}");
        }
    }

    #[test]
    fn guarded_mine_matches_plain_and_interrupts_typed() {
        let (_, session) = planted_session();
        let cfg = counts_cfg();
        let plain = session.mine(&cfg).unwrap();

        let live = CancelToken::new();
        let guarded = session.mine_guarded(&cfg, &live).unwrap();
        assert_eq!(guarded.patterns, plain.patterns);
        assert_eq!(guarded.cells, plain.cells);
        let seeded = session.mine_seeded_guarded(&cfg, &live).unwrap();
        assert_eq!(seeded.patterns, plain.patterns);

        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = session.mine_guarded(&cfg, &cancelled).unwrap_err();
        assert!(matches!(err, FlipperError::Cancelled), "{err}");
        assert_eq!(err.exit_code(), 3);
        let err = session.mine_seeded_guarded(&cfg, &cancelled).unwrap_err();
        assert!(matches!(err, FlipperError::Cancelled), "{err}");

        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        let err = session.mine_guarded(&cfg, &expired).unwrap_err();
        assert!(matches!(err, FlipperError::Timeout), "{err}");
        assert_eq!(err.exit_code(), 3);
    }

    /// Byte spans of the FBIN chunk sections in `bytes` (walked from the
    /// fixed 8-byte header: tag, u32 LE length, payload, u32 CRC).
    fn chunk_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut at = 8usize;
        while at < bytes.len() {
            let tag = bytes[at];
            let len = u32::from_le_bytes(bytes[at + 1..at + 5].try_into().unwrap()) as usize;
            let end = at + 1 + 4 + len + 4;
            if tag == 0x02 {
                spans.push((at, end));
            }
            at = end;
        }
        spans
    }

    #[test]
    fn salvage_open_quarantines_damage_and_mines_the_rest() {
        let dir = std::env::temp_dir().join(format!("flipper-api-salvage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = flipper_datagen::planted::generate(&PlantedParams::default());

        // One transaction per chunk, so one damaged chunk loses one txn.
        let mut w =
            flipper_store::FbinWriter::with_chunk_size(Vec::new(), &data.taxonomy, 1).unwrap();
        for txn in data.db.iter() {
            w.write_transaction(txn).unwrap();
        }
        let intact = w.finish().unwrap();

        // Intact file: salvage report present but not degraded, and the
        // session mines exactly like a strict open.
        let clean_path = dir.join("clean.fbin");
        std::fs::write(&clean_path, &intact).unwrap();
        let clean = Session::open_salvage_path(&clean_path).unwrap();
        let report = clean.salvage_report().unwrap();
        assert!(!report.is_degraded(), "{}", report.summary());
        assert_eq!(clean.num_transactions(), data.db.len());
        assert!(clean.database().is_none());
        assert!(clean.origin().contains("salvage"));
        let strict = Session::open_path(&clean_path).unwrap();
        assert_eq!(
            clean.mine(&counts_cfg()).unwrap().patterns,
            strict.mine(&counts_cfg()).unwrap().patterns
        );

        // Flip one payload byte in the second chunk: strict open fails
        // typed, salvage quarantines exactly that chunk and mines on.
        let spans = chunk_spans(&intact);
        assert!(spans.len() >= 3, "one chunk per transaction");
        let mut damaged = intact.clone();
        damaged[spans[1].0 + 6] ^= 0x20;
        let bad_path = dir.join("damaged.fbin");
        std::fs::write(&bad_path, &damaged).unwrap();
        let err = Session::open_path(&bad_path).unwrap_err();
        assert!(matches!(err, FlipperError::Store(_)), "{err}");
        let salvaged = Session::open_salvage_path(&bad_path).unwrap();
        let report = salvaged.salvage_report().unwrap();
        assert!(report.is_degraded());
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].index, 1);
        assert_eq!(salvaged.num_transactions(), data.db.len() - 1);
        salvaged.mine(&counts_cfg()).unwrap();

        // Text datasets are rejected: salvage is an FBIN affordance.
        let text_path = dir.join("toy.txt");
        crate::io::write_path(
            &text_path,
            &flipper_data::format::Dataset {
                taxonomy: data.taxonomy.clone(),
                db: data.db.clone(),
            },
            crate::io::FileFormat::Text,
        )
        .unwrap();
        let err = Session::open_salvage_path(&text_path).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stability_runs_on_materialized_sessions() {
        let session = Session::open(Generator::Planted(PlantedParams {
            background_txns: 0,
            ..PlantedParams::default()
        }))
        .unwrap();
        let report = session.stability(&counts_cfg(), 3, 7).unwrap();
        assert_eq!(report.rounds, 3);
    }
}
