//! The one error type every fallible façade path returns.
//!
//! The pre-façade surface leaked a different error story per layer —
//! `FormatError` from the text parser, `StoreError` from FBIN,
//! `Result<_, String>` from the CLI. [`FlipperError`] unifies them: each
//! variant is either a typed wrapper around a layer error (preserving it via
//! [`std::error::Error::source`]) or one of the two façade-level categories,
//! configuration ([`FlipperError::Config`]) and caller misuse
//! ([`FlipperError::Usage`]). Frontends map variants to exit codes or HTTP
//! statuses with one `match` — no string inspection anywhere.

use flipper_core::ConfigError;
use flipper_data::format::FormatError;
use flipper_data::DataError;
use flipper_store::StoreError;
use flipper_taxonomy::TaxonomyError;
use std::error::Error;
use std::fmt;

/// Any failure of the flipper façade.
#[derive(Debug)]
pub enum FlipperError {
    /// Underlying I/O failure, with the path or operation it happened on.
    Io {
        /// What was being done (`"open data.fbin"`, `"write report.json"`).
        context: String,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// Structural problem in a text dataset, with a 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// FBIN storage-layer failure (bad magic, truncation, bit rot, …).
    Store(StoreError),
    /// Taxonomy construction or validation failure.
    Taxonomy(TaxonomyError),
    /// Transaction-database construction failure.
    Data(DataError),
    /// The mining configuration violates an invariant.
    Config(ConfigError),
    /// The caller asked for something the API cannot do — a malformed flag,
    /// an unknown name, a request that needs state the session does not
    /// hold. CLIs conventionally map this to exit code 2.
    Usage(String),
}

impl FlipperError {
    /// Build an [`FlipperError::Io`] with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        FlipperError::Io {
            context: context.into(),
            source,
        }
    }

    /// Build an [`FlipperError::Usage`] from anything displayable.
    pub fn usage(message: impl Into<String>) -> Self {
        FlipperError::Usage(message.into())
    }

    /// The conventional process exit code for this error: `2` for usage
    /// errors (matching `grep`, `diff` and friends), `1` for everything
    /// else (I/O, data, configuration).
    pub fn exit_code(&self) -> u8 {
        match self {
            FlipperError::Usage(_) => 2,
            _ => 1,
        }
    }

    /// Render `self` and its full [`source`](Error::source) chain, one
    /// `caused by:` line per link — the diagnostic format the CLI prints.
    pub fn render_chain(&self) -> String {
        let mut out = format!("error: {self}");
        let mut cause = self.source();
        while let Some(e) = cause {
            out.push_str(&format!("\n  caused by: {e}"));
            cause = e.source();
        }
        out
    }
}

impl fmt::Display for FlipperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipperError::Io { context, source } => write!(f, "{context}: {source}"),
            FlipperError::Parse { line, message } => write!(f, "line {line}: {message}"),
            FlipperError::Store(_) => write!(f, "storage error"),
            FlipperError::Taxonomy(_) => write!(f, "taxonomy error"),
            FlipperError::Data(_) => write!(f, "data error"),
            FlipperError::Config(_) => write!(f, "invalid mining configuration"),
            FlipperError::Usage(message) => write!(f, "{message}"),
        }
    }
}

impl Error for FlipperError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlipperError::Io { source, .. } => Some(source),
            FlipperError::Store(e) => Some(e),
            FlipperError::Taxonomy(e) => Some(e),
            FlipperError::Data(e) => Some(e),
            FlipperError::Config(e) => Some(e),
            FlipperError::Parse { .. } | FlipperError::Usage(_) => None,
        }
    }
}

impl From<StoreError> for FlipperError {
    fn from(e: StoreError) -> Self {
        FlipperError::Store(e)
    }
}

impl From<TaxonomyError> for FlipperError {
    fn from(e: TaxonomyError) -> Self {
        FlipperError::Taxonomy(e)
    }
}

impl From<DataError> for FlipperError {
    fn from(e: DataError) -> Self {
        FlipperError::Data(e)
    }
}

impl From<ConfigError> for FlipperError {
    fn from(e: ConfigError) -> Self {
        FlipperError::Config(e)
    }
}

impl From<FormatError> for FlipperError {
    fn from(e: FormatError) -> Self {
        match e {
            FormatError::Io(e) => FlipperError::io("reading text dataset", e),
            FormatError::Parse { line, message } => FlipperError::Parse { line, message },
            FormatError::Taxonomy(e) => FlipperError::Taxonomy(e),
            FormatError::Data(e) => FlipperError::Data(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_convention() {
        assert_eq!(FlipperError::usage("bad flag").exit_code(), 2);
        assert_eq!(
            FlipperError::io("open x", std::io::Error::other("gone")).exit_code(),
            1
        );
        assert_eq!(
            FlipperError::from(ConfigError::EmptySupports).exit_code(),
            1
        );
    }

    #[test]
    fn source_chain_is_preserved() {
        let e = FlipperError::from(StoreError::BadMagic(*b"NOPE"));
        let chain = e.render_chain();
        assert!(chain.starts_with("error: storage error"));
        assert!(chain.contains("caused by:"));
        assert!(chain.contains("FBIN"), "inner error surfaces: {chain}");

        let e = FlipperError::usage("unknown subcommand");
        assert!(e.source().is_none());
        assert_eq!(e.render_chain(), "error: unknown subcommand");
    }

    #[test]
    fn format_errors_map_by_variant() {
        let e: FlipperError = FormatError::Parse {
            line: 7,
            message: "bad".into(),
        }
        .into();
        assert!(matches!(e, FlipperError::Parse { line: 7, .. }));
        assert_eq!(e.to_string(), "line 7: bad");

        let e: FlipperError = FormatError::Io(std::io::Error::other("disk")).into();
        assert!(matches!(e, FlipperError::Io { .. }));
        assert!(e.render_chain().contains("disk"));
    }

    #[test]
    fn config_errors_read_well() {
        let e: FlipperError = ConfigError::BadSupportFraction(1.5).into();
        let chain = e.render_chain();
        assert!(chain.contains("invalid mining configuration"));
        assert!(chain.contains("1.5"));
    }
}
