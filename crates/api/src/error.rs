//! The one error type every fallible façade path returns.
//!
//! The pre-façade surface leaked a different error story per layer —
//! `FormatError` from the text parser, `StoreError` from FBIN,
//! `Result<_, String>` from the CLI. [`FlipperError`] unifies them: each
//! variant is either a typed wrapper around a layer error (preserving it via
//! [`std::error::Error::source`]) or one of the two façade-level categories,
//! configuration ([`FlipperError::Config`]) and caller misuse
//! ([`FlipperError::Usage`]). Frontends map variants to exit codes or HTTP
//! statuses with one `match` — no string inspection anywhere.

use flipper_core::ConfigError;
use flipper_data::format::FormatError;
use flipper_data::DataError;
use flipper_guard::GuardError;
use flipper_store::StoreError;
use flipper_taxonomy::TaxonomyError;
use std::error::Error;
use std::fmt;

/// Any failure of the flipper façade.
#[derive(Debug)]
pub enum FlipperError {
    /// Underlying I/O failure, with the path or operation it happened on.
    Io {
        /// What was being done (`"open data.fbin"`, `"write report.json"`).
        context: String,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// Structural problem in a text dataset, with a 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// FBIN storage-layer failure (bad magic, truncation, bit rot, …).
    Store(StoreError),
    /// Taxonomy construction or validation failure.
    Taxonomy(TaxonomyError),
    /// Transaction-database construction failure.
    Data(DataError),
    /// The mining configuration violates an invariant.
    Config(ConfigError),
    /// The caller asked for something the API cannot do — a malformed flag,
    /// an unknown name, a request that needs state the session does not
    /// hold. CLIs conventionally map this to exit code 2.
    Usage(String),
    /// The run was cancelled through its
    /// [`CancelToken`](flipper_guard::CancelToken) before it finished.
    /// CLIs map this to exit code 3.
    Cancelled,
    /// The run's deadline expired before it finished. CLIs map this to
    /// exit code 3, like [`FlipperError::Cancelled`].
    Timeout,
    /// A worker or miner panicked and the panic was trapped at a named
    /// site instead of unwinding into (and aborting) the caller.
    Panicked {
        /// Where the panic was trapped (`"mine"`, `"sweep.point"`).
        site: String,
        /// The panic message.
        message: String,
    },
}

impl FlipperError {
    /// Build an [`FlipperError::Io`] with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        FlipperError::Io {
            context: context.into(),
            source,
        }
    }

    /// Build an [`FlipperError::Usage`] from anything displayable.
    pub fn usage(message: impl Into<String>) -> Self {
        FlipperError::Usage(message.into())
    }

    /// The conventional process exit code for this error: `2` for usage
    /// errors (matching `grep`, `diff` and friends), `3` for interrupted
    /// runs ([`Cancelled`](FlipperError::Cancelled) /
    /// [`Timeout`](FlipperError::Timeout) — distinguishable from real
    /// failures, so timeout-wrapping scripts can retry), `1` for
    /// everything else (I/O, data, configuration, trapped panics).
    pub fn exit_code(&self) -> u8 {
        match self {
            FlipperError::Usage(_) => 2,
            FlipperError::Cancelled | FlipperError::Timeout => 3,
            _ => 1,
        }
    }

    /// Render `self` and its full [`source`](Error::source) chain, one
    /// `caused by:` line per link — the diagnostic format the CLI prints.
    pub fn render_chain(&self) -> String {
        let mut out = format!("error: {self}");
        let mut cause = self.source();
        while let Some(e) = cause {
            out.push_str(&format!("\n  caused by: {e}"));
            cause = e.source();
        }
        out
    }
}

impl fmt::Display for FlipperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipperError::Io { context, source } => write!(f, "{context}: {source}"),
            FlipperError::Parse { line, message } => write!(f, "line {line}: {message}"),
            FlipperError::Store(_) => write!(f, "storage error"),
            FlipperError::Taxonomy(_) => write!(f, "taxonomy error"),
            FlipperError::Data(_) => write!(f, "data error"),
            FlipperError::Config(_) => write!(f, "invalid mining configuration"),
            FlipperError::Usage(message) => write!(f, "{message}"),
            FlipperError::Cancelled => write!(f, "operation cancelled"),
            FlipperError::Timeout => write!(f, "operation deadline exceeded"),
            FlipperError::Panicked { site, message } => {
                write!(f, "panic trapped at {site}: {message}")
            }
        }
    }
}

impl Error for FlipperError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlipperError::Io { source, .. } => Some(source),
            FlipperError::Store(e) => Some(e),
            FlipperError::Taxonomy(e) => Some(e),
            FlipperError::Data(e) => Some(e),
            FlipperError::Config(e) => Some(e),
            FlipperError::Parse { .. }
            | FlipperError::Usage(_)
            | FlipperError::Cancelled
            | FlipperError::Timeout
            | FlipperError::Panicked { .. } => None,
        }
    }
}

impl From<GuardError> for FlipperError {
    fn from(e: GuardError) -> Self {
        match e {
            GuardError::Cancelled => FlipperError::Cancelled,
            GuardError::TimedOut => FlipperError::Timeout,
            GuardError::Panicked { site, message } => FlipperError::Panicked { site, message },
        }
    }
}

impl From<StoreError> for FlipperError {
    fn from(e: StoreError) -> Self {
        FlipperError::Store(e)
    }
}

impl From<TaxonomyError> for FlipperError {
    fn from(e: TaxonomyError) -> Self {
        FlipperError::Taxonomy(e)
    }
}

impl From<DataError> for FlipperError {
    fn from(e: DataError) -> Self {
        FlipperError::Data(e)
    }
}

impl From<ConfigError> for FlipperError {
    fn from(e: ConfigError) -> Self {
        FlipperError::Config(e)
    }
}

impl From<FormatError> for FlipperError {
    fn from(e: FormatError) -> Self {
        match e {
            FormatError::Io(e) => FlipperError::io("reading text dataset", e),
            FormatError::Parse { line, message } => FlipperError::Parse { line, message },
            FormatError::Taxonomy(e) => FlipperError::Taxonomy(e),
            FormatError::Data(e) => FlipperError::Data(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_convention() {
        assert_eq!(FlipperError::usage("bad flag").exit_code(), 2);
        assert_eq!(
            FlipperError::io("open x", std::io::Error::other("gone")).exit_code(),
            1
        );
        assert_eq!(
            FlipperError::from(ConfigError::EmptySupports).exit_code(),
            1
        );
        assert_eq!(FlipperError::Cancelled.exit_code(), 3);
        assert_eq!(FlipperError::Timeout.exit_code(), 3);
        assert_eq!(
            FlipperError::Panicked {
                site: "mine".into(),
                message: "boom".into(),
            }
            .exit_code(),
            1
        );
    }

    #[test]
    fn guard_errors_map_by_variant() {
        let e: FlipperError = GuardError::Cancelled.into();
        assert!(matches!(e, FlipperError::Cancelled));
        assert_eq!(e.to_string(), "operation cancelled");
        assert!(e.source().is_none());

        let e: FlipperError = GuardError::TimedOut.into();
        assert!(matches!(e, FlipperError::Timeout));
        assert_eq!(e.to_string(), "operation deadline exceeded");

        let e: FlipperError = GuardError::Panicked {
            site: "sweep.point".into(),
            message: "index out of bounds".into(),
        }
        .into();
        assert_eq!(
            e.to_string(),
            "panic trapped at sweep.point: index out of bounds"
        );
        assert_eq!(e.render_chain(), format!("error: {e}"));
    }

    #[test]
    fn source_chain_is_preserved() {
        let e = FlipperError::from(StoreError::BadMagic(*b"NOPE"));
        let chain = e.render_chain();
        assert!(chain.starts_with("error: storage error"));
        assert!(chain.contains("caused by:"));
        assert!(chain.contains("FBIN"), "inner error surfaces: {chain}");

        let e = FlipperError::usage("unknown subcommand");
        assert!(e.source().is_none());
        assert_eq!(e.render_chain(), "error: unknown subcommand");
    }

    #[test]
    fn format_errors_map_by_variant() {
        let e: FlipperError = FormatError::Parse {
            line: 7,
            message: "bad".into(),
        }
        .into();
        assert!(matches!(e, FlipperError::Parse { line: 7, .. }));
        assert_eq!(e.to_string(), "line 7: bad");

        let e: FlipperError = FormatError::Io(std::io::Error::other("disk")).into();
        assert!(matches!(e, FlipperError::Io { .. }));
        assert!(e.render_chain().contains("disk"));
    }

    #[test]
    fn config_errors_read_well() {
        let e: FlipperError = ConfigError::BadSupportFraction(1.5).into();
        let chain = e.render_chain();
        assert!(chain.contains("invalid mining configuration"));
        assert!(chain.contains("1.5"));
    }
}
