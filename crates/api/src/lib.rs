//! # flipper-api
//!
//! The unified session façade for flipping-correlation mining — the one
//! public surface the CLI, the examples, the benches and future server
//! frontends all sit on. Four ideas:
//!
//! * **Typed sources** ([`DataSource`]): text files, FBIN files and streams
//!   (auto-detected by magic bytes, streamed chunk by chunk), in-memory
//!   [`Dataset`]s and the five [`Generator`]s all funnel into one ingestion
//!   path.
//! * **Sessions** ([`Session`]): ingest a source *once* into a cached
//!   [`MultiLevelView`](flipper_data::MultiLevelView), then run any number
//!   of [`FlipperConfig`]s against it — each result bit-identical to the
//!   single-shot [`flipper_core::mine`] / [`flipper_core::mine_with_view`]
//!   paths.
//! * **Sweeps** ([`Sweep`]): γ/ε grids, pruning-variant comparisons and
//!   engine × thread matrices as first-class labeled run sets, sharded over
//!   `flipper_data::exec` workers.
//! * **Typed errors and sinks**: every fallible path returns
//!   [`FlipperError`] (with [`source`](std::error::Error::source) chains
//!   down to the failing layer); results flow into pluggable
//!   [`ResultSink`]s — human-readable [`TextReport`], machine-readable
//!   [`JsonWriter`] (`flipper-results/v1`), accumulating [`TopK`].
//!
//! ```
//! use flipper_api::{Generator, Session, FlipperConfig, MinSupports, Thresholds, JsonWriter, ResultSink};
//! use flipper_datagen::planted::PlantedParams;
//!
//! // Open a session (ingest once)…
//! let session = Session::open(Generator::Planted(PlantedParams::default()))?;
//! let base = FlipperConfig {
//!     thresholds: Thresholds::new(0.6, 0.35), // the planted calibration
//!     min_support: MinSupports::Counts(vec![5]),
//!     ..Default::default()
//! };
//! // …mine it…
//! let result = session.mine(&base)?;
//! assert!(!result.patterns.is_empty());
//! // …sweep a γ/ε grid over the same cached view…
//! let runs = session
//!     .sweep()
//!     .thresholds_grid(&base, &[0.5, 0.4], &[0.2, 0.1])
//!     .run()?;
//! assert_eq!(runs.len(), 4);
//! // …and sink everything to machine-readable JSON.
//! let mut json = JsonWriter::new(Vec::new());
//! flipper_api::emit_runs(&mut json, session.taxonomy(), &runs)?;
//! # Ok::<(), flipper_api::FlipperError>(())
//! ```

mod checkpoint;
mod error;
pub mod io;
mod session;
mod sink;
mod source;
mod sweep;

pub use checkpoint::{CheckpointRow, SweepJournal};
pub use error::FlipperError;
pub use session::Session;
pub use sink::{emit_runs, JsonWriter, ResultSink, TextReport, TopK, TopKEntry};
pub use source::{DataSource, FbinSource, Generator, Ingested, PathSource, TextSource};
pub use sweep::{threshold_point, Sweep, SweepOutcome, SweepRun};

// Re-exported conveniences: the types a façade caller needs to configure a
// run and read its results, so frontends depend on `flipper-api` alone.
pub use flipper_core::stability::StabilityReport;
pub use flipper_core::topk::{SearchConfigError, TopKConfig, TopKResult};
pub use flipper_core::{
    ChainError, ConfigError, FlipperConfig, FlippingPattern, MinSupports, MiningResult,
    PruningConfig, RunStats,
};
pub use flipper_data::format::Dataset;
pub use flipper_data::{stats, CacheStats, CountingEngine, SupportCache, DEFAULT_CACHE_BUDGET};
pub use flipper_datagen::planted::PlantedParams;
pub use flipper_datagen::quest::QuestParams;
pub use flipper_guard::{CancelToken, GuardError};
pub use flipper_measures::{Measure, Thresholds};
pub use flipper_store::{QuarantinedChunk, SalvageReport};
pub use flipper_taxonomy::{RebalancePolicy, Taxonomy};
