//! Sweep checkpoint journals: a killed sweep resumes instead of restarting.
//!
//! A long γ/ε grid over a large dataset can run for hours; losing the whole
//! sweep to a timeout, an operator Ctrl-C or an OOM kill at point 97 of 100
//! is the kind of non-robustness this crate exists to remove. A
//! [`SweepJournal`] is an append-only text file recording one line per
//! **completed** grid point; re-running the same sweep against the same
//! journal skips every recorded point and mines only the remainder.
//!
//! # The `flipper-sweep-ckpt/v1` format
//!
//! ```text
//! flipper-sweep-ckpt/v1
//! fingerprint <origin>#<transactions>
//! <key> <patterns> <positive> <negative> <candidates> <label>
//! <key> <patterns> <positive> <negative> <candidates> <label>
//! ```
//!
//! * `fingerprint` ties the journal to one dataset (ingestion origin plus
//!   transaction count); resuming against a different dataset is a
//!   [`FlipperError::Usage`], not a silently wrong merge.
//! * `key` is a 16-hex-digit FNV-1a hash over the point's label and its
//!   result-determining configuration fields — the same fields sweep
//!   deduplication keys on — so a point is only ever skipped when both its
//!   label and its exact configuration already completed.
//! * The remaining columns are the point's summary (pattern/positive/
//!   negative counts and candidates generated); the label comes last and
//!   may contain spaces. Restored points surface these summaries — the
//!   journal deliberately does not persist full [`MiningResult`]s, which
//!   would turn a crash-recovery aid into a second results format.
//!
//! Lines are appended under a mutex and flushed per point, so a sweep
//! killed mid-run loses at most the points still in flight. **Line order is
//! thread-schedule-dependent; line content is deterministic.** A torn final
//! line (the kill landed mid-append) is skipped on load — exactly the
//! graceful-degradation stance the FBIN salvage reader takes.
//!
//! [`MiningResult`]: flipper_core::MiningResult

use crate::error::FlipperError;
use crate::session::Session;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First line of every journal file.
const JOURNAL_MAGIC: &str = flipper_wire::SWEEP_CKPT_V1;

/// Summary of one completed sweep point, as persisted in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRow {
    /// The point's label.
    pub label: String,
    /// Number of flipping patterns the point found.
    pub patterns: u64,
    /// Total positively-correlated chain levels across its patterns.
    pub positive: u64,
    /// Total negatively-correlated chain levels across its patterns.
    pub negative: u64,
    /// Candidates the run generated (a proxy for the work skipped).
    pub candidates: u64,
}

/// FNV-1a point identity: label plus the result-determining configuration
/// key, so two points collide only when rerunning one would reproduce the
/// other byte for byte.
pub(crate) fn point_key(label: &str, result_key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label
        .bytes()
        .chain(std::iter::once(0))
        .chain(result_key.bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The dataset identity a journal is valid for.
fn fingerprint(session: &Session) -> String {
    format!("{}#{}", session.origin(), session.num_transactions())
}

fn journal_err(path: &Path, e: std::io::Error) -> FlipperError {
    FlipperError::io(format!("checkpoint journal {}", path.display()), e)
}

/// An append-only journal of completed sweep points. Open one against a
/// session and pass it to
/// [`Sweep::run_checkpointed`](crate::Sweep::run_checkpointed); see the
/// module docs for the file format and crash semantics.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    done: BTreeMap<u64, CheckpointRow>,
    out: Mutex<File>,
}

impl SweepJournal {
    /// Open (or create) the journal at `path` for sweeps over `session`.
    ///
    /// A fresh path starts an empty journal. An existing file is loaded —
    /// its recorded points will be skipped by the next checkpointed sweep —
    /// after verifying the header and that its fingerprint matches this
    /// session's dataset ([`FlipperError::Usage`] otherwise).
    pub fn open(path: impl Into<PathBuf>, session: &Session) -> Result<SweepJournal, FlipperError> {
        let path = path.into();
        let fp = fingerprint(session);
        let mut done = BTreeMap::new();
        if path.exists() {
            let file = File::open(&path).map_err(|e| journal_err(&path, e))?;
            let mut lines = BufReader::new(file).lines();
            let header = lines
                .next()
                .transpose()
                .map_err(|e| journal_err(&path, e))?
                .unwrap_or_default();
            if header != JOURNAL_MAGIC {
                return Err(FlipperError::usage(format!(
                    "{} is not a sweep checkpoint journal (expected a {JOURNAL_MAGIC} header)",
                    path.display()
                )));
            }
            let fp_line = lines
                .next()
                .transpose()
                .map_err(|e| journal_err(&path, e))?
                .unwrap_or_default();
            let theirs = fp_line.strip_prefix("fingerprint ").unwrap_or("");
            if theirs != fp {
                return Err(FlipperError::usage(format!(
                    "checkpoint journal {} was written for a different dataset \
                     ({theirs}) than this session ({fp}); use a fresh journal path",
                    path.display()
                )));
            }
            for line in lines {
                let line = line.map_err(|e| journal_err(&path, e))?;
                // A torn trailing line (killed mid-append) parses as None
                // and is dropped: that point simply re-mines.
                if let Some((key, row)) = parse_row(&line) {
                    done.insert(key, row);
                }
            }
            let out = OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| journal_err(&path, e))?;
            Ok(SweepJournal {
                path,
                done,
                out: Mutex::new(out),
            })
        } else {
            let mut out = File::create(&path).map_err(|e| journal_err(&path, e))?;
            out.write_all(format!("{JOURNAL_MAGIC}\nfingerprint {fp}\n").as_bytes())
                .and_then(|()| out.flush())
                .map_err(|e| journal_err(&path, e))?;
            Ok(SweepJournal {
                path,
                done,
                out: Mutex::new(out),
            })
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed points currently recorded.
    pub fn completed_points(&self) -> usize {
        self.done.len()
    }

    /// The recorded summary for `key`, when that point already completed.
    pub(crate) fn completed(&self, key: u64) -> Option<&CheckpointRow> {
        self.done.get(&key)
    }

    /// Append one completed point and flush, so the record survives a kill
    /// that lands right after it. Safe to call from sweep worker threads.
    pub(crate) fn record(&self, key: u64, row: &CheckpointRow) -> Result<(), FlipperError> {
        let line = format!(
            "{key:016x} {} {} {} {} {}\n",
            row.patterns, row.positive, row.negative, row.candidates, row.label
        );
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        out.write_all(line.as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| journal_err(&self.path, e))
    }
}

/// Parse one journal row; `None` for torn or malformed lines.
fn parse_row(line: &str) -> Option<(u64, CheckpointRow)> {
    let mut fields = line.splitn(6, ' ');
    let key = u64::from_str_radix(fields.next()?, 16).ok()?;
    let patterns = fields.next()?.parse().ok()?;
    let positive = fields.next()?.parse().ok()?;
    let negative = fields.next()?.parse().ok()?;
    let candidates = fields.next()?.parse().ok()?;
    let label = fields.next()?;
    Some((
        key,
        CheckpointRow {
            label: label.to_string(),
            patterns,
            positive,
            negative,
            candidates,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Generator;
    use flipper_datagen::planted::PlantedParams;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flipper-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn session() -> Session {
        Session::open(Generator::Planted(PlantedParams::default())).unwrap()
    }

    #[test]
    fn rows_round_trip_through_the_file() {
        let path = temp_path("roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);
        let s = session();
        let journal = SweepJournal::open(&path, &s).unwrap();
        assert_eq!(journal.completed_points(), 0);
        let row = CheckpointRow {
            label: "g0.5/e0.1 with spaces".to_string(),
            patterns: 3,
            positive: 7,
            negative: 5,
            candidates: 91,
        };
        let key = point_key(&row.label, "some-config-key");
        journal.record(key, &row).unwrap();
        drop(journal);

        let reopened = SweepJournal::open(&path, &s).unwrap();
        assert_eq!(reopened.completed_points(), 1);
        assert_eq!(reopened.completed(key), Some(&row));
        assert_eq!(reopened.completed(key ^ 1), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_lines_are_dropped_not_fatal() {
        let path = temp_path("torn.ckpt");
        let _ = std::fs::remove_file(&path);
        let s = session();
        let journal = SweepJournal::open(&path, &s).unwrap();
        let row = CheckpointRow {
            label: "ok".to_string(),
            patterns: 1,
            positive: 2,
            negative: 1,
            candidates: 10,
        };
        journal.record(7, &row).unwrap();
        drop(journal);
        // Simulate a kill mid-append: half a line at the end.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"00000000000000ff 4 2");
        std::fs::write(&path, &bytes).unwrap();

        let reopened = SweepJournal::open(&path, &s).unwrap();
        assert_eq!(reopened.completed_points(), 1);
        assert_eq!(reopened.completed(7), Some(&row));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_header_or_dataset_is_a_usage_error() {
        let s = session();
        let path = temp_path("not-a-journal.ckpt");
        std::fs::write(&path, "something else\n").unwrap();
        let err = SweepJournal::open(&path, &s).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)), "{err}");

        let path = temp_path("other-dataset.ckpt");
        std::fs::write(
            &path,
            format!("{JOURNAL_MAGIC}\nfingerprint other-data#999\n"),
        )
        .unwrap();
        let err = SweepJournal::open(&path, &s).unwrap_err();
        assert!(matches!(err, FlipperError::Usage(_)), "{err}");
        assert!(err.to_string().contains("different dataset"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn point_keys_separate_label_from_config() {
        // The NUL separator means ("ab", "c") and ("a", "bc") differ.
        assert_ne!(point_key("ab", "c"), point_key("a", "bc"));
        assert_ne!(point_key("x", "k1"), point_key("x", "k2"));
        assert_eq!(point_key("x", "k1"), point_key("x", "k1"));
    }
}
