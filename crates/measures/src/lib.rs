//! # flipper-measures
//!
//! Correlation measures for itemset mining, implementing Section 2–3 of
//! Barsky et al., *Mining Flipping Correlations from Large Datasets with
//! Taxonomies* (PVLDB 5(4), 2011).
//!
//! The crate provides:
//!
//! * the five **null-invariant** measures of the paper's Table 2 behind the
//!   [`CorrelationMeasure`] trait ([`Measure`] enum): All-Confidence,
//!   Coherence, Cosine, Kulczynski and Max-Confidence — all generalized
//!   means of the conditional probabilities `P(A|aᵢ) = sup(A)/sup(aᵢ)`;
//! * **expectation-based** measures (Lift, χ², φ) in [`expectation`], kept
//!   only to reproduce the paper's Table 1 demonstration of their
//!   instability under varying database size;
//! * correlation [`Label`]s and [`Thresholds`] implementing Definition 1;
//! * the pruning bounds of Theorems 1 and 2 in [`bounds`], checkable against
//!   arbitrary support oracles.
//!
//! ```
//! use flipper_measures::{Measure, CorrelationMeasure, Thresholds, Label};
//!
//! let kulc = Measure::Kulczynski;
//! // sup(AB)=400, sup(A)=sup(B)=1000  →  Kulc = 0.40, regardless of N.
//! let corr = kulc.pair(400, 1000, 1000);
//! assert!((corr - 0.40).abs() < 1e-12);
//!
//! let thresholds = Thresholds::new(0.3, 0.1);
//! assert_eq!(thresholds.label(corr, true), Label::Positive);
//! ```

pub mod bounds;
pub mod expectation;
mod label;
mod null_invariant;

pub use label::{Label, Thresholds};
pub use null_invariant::{jaccard_pair, CorrelationMeasure, Measure};
