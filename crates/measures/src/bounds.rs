//! The pruning-enabling properties of null-invariant measures (Section 3 of
//! the paper): the correlation upper bound (Theorem 1) and the special
//! single-item bound (Theorem 2).
//!
//! These functions are expressed against a *support oracle* — any closure
//! mapping a set of item indices to its support — so they can be checked
//! against real databases in tests and reused by the miner's sanity
//! assertions.

use crate::null_invariant::CorrelationMeasure;

/// Correlation of the sub-itemset of `items` selected by `idxs`, where
/// `oracle(S)` returns the support of the itemset `{items[i] : i ∈ S}`.
///
/// `idxs` must be non-empty.
pub fn corr_of_subset<M, F>(measure: &M, oracle: &F, idxs: &[usize]) -> f64
where
    M: CorrelationMeasure + ?Sized,
    F: Fn(&[usize]) -> u64,
{
    let sup = oracle(idxs);
    let item_sups: Vec<u64> = idxs.iter().map(|&i| oracle(&[i])).collect();
    measure.value(sup, &item_sups)
}

/// Theorem 1's right-hand side: `max` of the correlations of all
/// `(k−1)`-sub-itemsets of the `k`-itemset `{0, …, k−1}`.
///
/// Returns `None` for `k < 2` (a 1-itemset has no non-empty strict subsets).
pub fn max_subset_corr<M, F>(measure: &M, oracle: &F, k: usize) -> Option<f64>
where
    M: CorrelationMeasure + ?Sized,
    F: Fn(&[usize]) -> u64,
{
    if k < 2 {
        return None;
    }
    let mut best = f64::NEG_INFINITY;
    for omit in 0..k {
        let idxs: Vec<usize> = (0..k).filter(|&i| i != omit).collect();
        best = best.max(corr_of_subset(measure, oracle, &idxs));
    }
    Some(best)
}

/// Check Theorem 1 on a concrete itemset: `Corr(A) ≤ max_{B ⊂ A, |B|=k−1}
/// Corr(B)` (up to floating-point slack).
pub fn theorem1_holds<M, F>(measure: &M, oracle: &F, k: usize) -> bool
where
    M: CorrelationMeasure + ?Sized,
    F: Fn(&[usize]) -> u64,
{
    let full: Vec<usize> = (0..k).collect();
    let corr = corr_of_subset(measure, oracle, &full);
    match max_subset_corr(measure, oracle, k) {
        Some(bound) => corr <= bound + 1e-9,
        None => true,
    }
}

/// Check Theorem 2 on a concrete itemset `A = {0, …, k−1}` with the special
/// item at index 0:
///
/// if (1) every `(k−1)`-subset of `A` containing item 0 has correlation
/// `< γ`, and (2) some other item's support is `≥ sup(item 0)`, then
/// `Corr(A) < γ`.
///
/// Returns `true` when the implication holds (vacuously true if the premise
/// fails).
pub fn theorem2_holds<M, F>(measure: &M, oracle: &F, k: usize, gamma: f64) -> bool
where
    M: CorrelationMeasure + ?Sized,
    F: Fn(&[usize]) -> u64,
{
    if k < 3 {
        // With k=2 the only (k−1)-subset containing item 0 is {0} itself
        // (corr 1); the theorem is about growing beyond pairs.
        return true;
    }
    let sup0 = oracle(&[0]);
    let cond2 = (1..k).any(|i| oracle(&[i]) >= sup0);
    if !cond2 {
        return true;
    }
    let all_below = (1..k).all(|omit| {
        let idxs: Vec<usize> = (0..k).filter(|&i| i != omit).collect();
        corr_of_subset(measure, oracle, &idxs) < gamma
    });
    if !all_below {
        return true;
    }
    let full: Vec<usize> = (0..k).collect();
    corr_of_subset(measure, oracle, &full) < gamma + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null_invariant::Measure;
    use flipper_rng::{Rng, Xoshiro256pp};

    /// A tiny transaction database over `n_items` items, as bit masks.
    #[derive(Debug, Clone)]
    struct TinyDb {
        txns: Vec<u32>,
    }

    impl TinyDb {
        fn oracle(&self) -> impl Fn(&[usize]) -> u64 + '_ {
            move |idxs: &[usize]| {
                let mask: u32 = idxs.iter().map(|&i| 1u32 << i).fold(0, |a, b| a | b);
                self.txns.iter().filter(|&&t| t & mask == mask).count() as u64
            }
        }
    }

    /// A random database over `n_items` items, as the retired proptest
    /// strategy built it: 1–39 random non-empty transactions plus one
    /// singleton per item so conditional probabilities are defined.
    fn random_db(rng: &mut Xoshiro256pp, n_items: usize) -> TinyDb {
        let full = (1u32 << n_items) - 1;
        let len = rng.gen_range(1..40usize);
        let mut txns: Vec<u32> = (0..len).map(|_| rng.gen_range(1..=full)).collect();
        for i in 0..n_items {
            txns.push(1 << i); // guarantee non-zero item supports
        }
        TinyDb { txns }
    }

    /// Theorem 1 holds for every measure on random databases, for
    /// itemsets of size 2..=4.
    #[test]
    fn theorem1_on_random_dbs() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x7101);
        for _ in 0..256 {
            let db = random_db(&mut rng, 4);
            let oracle = db.oracle();
            for m in Measure::ALL {
                for k in 2..=4 {
                    assert!(
                        theorem1_holds(&m, &oracle, k),
                        "theorem 1 violated for {:?} k={} db={:?}",
                        m,
                        k,
                        db
                    );
                }
            }
        }
    }

    /// Theorem 2 holds for every measure on random databases and a grid
    /// of γ values.
    #[test]
    fn theorem2_on_random_dbs() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x7102);
        for _ in 0..256 {
            let db = random_db(&mut rng, 4);
            let gamma = rng.gen_range(0.05..0.95);
            let oracle = db.oracle();
            for m in Measure::ALL {
                for k in 3..=4 {
                    assert!(
                        theorem2_holds(&m, &oracle, k, gamma),
                        "theorem 2 violated for {:?} k={} gamma={} db={:?}",
                        m,
                        k,
                        gamma,
                        db
                    );
                }
            }
        }
    }

    /// Anti-monotone measures satisfy the stronger subset-dominance:
    /// the full itemset's correlation never exceeds *any* subset's.
    /// (Only All-Confidence qualifies — the harmonic-mean Coherence is
    /// not anti-monotone; see `coherence_harmonic_not_anti_monotone`.)
    #[test]
    fn anti_monotone_dominated_by_every_subset() {
        let mut rng = Xoshiro256pp::seed_from_u64(0x7103);
        for _ in 0..256 {
            let db = random_db(&mut rng, 4);
            let oracle = db.oracle();
            for m in Measure::ALL.into_iter().filter(|m| m.is_anti_monotone()) {
                let full: Vec<usize> = (0..4).collect();
                let c = corr_of_subset(&m, &oracle, &full);
                for omit in 0..4 {
                    let idxs: Vec<usize> = (0..4).filter(|&i| i != omit).collect();
                    let cs = corr_of_subset(&m, &oracle, &idxs);
                    assert!(c <= cs + 1e-9, "{:?}: {} > subset {}", m, c, cs);
                }
            }
        }
    }

    #[test]
    fn max_subset_corr_requires_pairs() {
        let db = TinyDb {
            txns: vec![0b11, 0b01, 0b10],
        };
        let oracle = db.oracle();
        assert!(max_subset_corr(&Measure::Kulczynski, &oracle, 1).is_none());
        assert!(max_subset_corr(&Measure::Kulczynski, &oracle, 2).is_some());
    }

    #[test]
    fn corr_of_subset_matches_direct_computation() {
        // txns over items {0,1}: three containing both, one containing only 0.
        let db = TinyDb {
            txns: vec![0b11, 0b11, 0b11, 0b01],
        };
        let oracle = db.oracle();
        let corr = corr_of_subset(&Measure::Kulczynski, &oracle, &[0, 1]);
        // sup(01)=3, sup(0)=4, sup(1)=3 → (3/4 + 3/3)/2 = 0.875.
        assert!((corr - 0.875).abs() < 1e-12);
    }

    /// The Kulc-specific worked example from the proof of Theorem 1: the
    /// mean of subset Kulc values dominates the full-set Kulc.
    #[test]
    fn kulc_mean_of_subsets_dominates() {
        let db = TinyDb {
            txns: vec![0b111, 0b111, 0b011, 0b101, 0b110, 0b001, 0b010, 0b100],
        };
        let oracle = db.oracle();
        let k = 3;
        let full: Vec<usize> = (0..k).collect();
        let full_corr = corr_of_subset(&Measure::Kulczynski, &oracle, &full);
        let mut sum = 0.0;
        for omit in 0..k {
            let idxs: Vec<usize> = (0..k).filter(|&i| i != omit).collect();
            sum += corr_of_subset(&Measure::Kulczynski, &oracle, &idxs);
        }
        assert!(full_corr <= sum / k as f64 + 1e-9);
    }
}
