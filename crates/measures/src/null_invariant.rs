//! The five null-invariant correlation measures (Table 2 of the paper).
//!
//! All five are *generalized means* of the conditional probabilities
//! `P(A | a_i) = sup(A) / sup(a_i)`:
//!
//! | measure        | mean       |
//! |----------------|------------|
//! | All-Confidence | minimum    |
//! | Coherence      | harmonic   |
//! | Cosine         | geometric  |
//! | Kulczynski     | arithmetic |
//! | Max-Confidence | maximum    |
//!
//! which yields the fixed ordering `AllConf ≤ Coherence ≤ Cosine ≤ Kulc ≤
//! MaxConf` on any input. **Null-invariance** is structural here: the value
//! depends only on `sup(A)` and the single-item supports, never on the total
//! transaction count `N` — so transactions containing none of the items
//! cannot disturb the score.

use std::fmt;

/// A correlation measure computable from the support of an itemset and the
/// supports of its single items.
///
/// Implementations must be *null-invariant*: the result may depend only on
/// the arguments, never on any notion of total database size.
pub trait CorrelationMeasure {
    /// Short lowercase identifier (e.g. `"kulc"`).
    fn name(&self) -> &'static str;

    /// Correlation of a k-itemset `A` given `sup(A)` and the supports of its
    /// k single items. `item_sups` must be non-empty and each entry must be
    /// `≥ sup_a` (an item occurs at least as often as any itemset containing
    /// it).
    fn value(&self, sup_a: u64, item_sups: &[u64]) -> f64;

    /// Whether the measure is anti-monotone (adding an item can never raise
    /// the value). True only for All-Confidence here. The paper calls
    /// Coherence anti-monotonic too, but that holds for the *original*
    /// intersection-over-union (Jaccard) form; the harmonic-mean
    /// re-definition in its Table 2 — which we implement — is not
    /// anti-monotone (see `coherence_harmonic_not_anti_monotone` in the
    /// tests for a 4-item counterexample). Theorems 1 and 2 hold for it
    /// regardless, so no pruning logic depends on this flag.
    fn is_anti_monotone(&self) -> bool;

    /// Convenience for pairs: `Corr({a, b})`.
    fn pair(&self, sup_ab: u64, sup_a: u64, sup_b: u64) -> f64 {
        self.value(sup_ab, &[sup_a, sup_b])
    }
}

/// The five null-invariant measures of Table 2, as a copyable enum so the
/// mining configuration stays `Copy` and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Measure {
    /// `min_i P(A|a_i)` — minimum of the conditional probabilities.
    AllConfidence,
    /// `k / Σ_i P(A|a_i)^{-1}` — harmonic mean (the paper's re-definition of
    /// Coherence, order-equivalent to Jaccard).
    Coherence,
    /// `(Π_i P(A|a_i))^{1/k}` — geometric mean.
    Cosine,
    /// `(Σ_i P(A|a_i)) / k` — arithmetic mean. The paper's default: tolerant
    /// of unbalanced supports, not anti-monotone.
    #[default]
    Kulczynski,
    /// `max_i P(A|a_i)` — maximum of the conditional probabilities.
    MaxConfidence,
}

impl Measure {
    /// All five measures, in their generalized-mean order.
    pub const ALL: [Measure; 5] = [
        Measure::AllConfidence,
        Measure::Coherence,
        Measure::Cosine,
        Measure::Kulczynski,
        Measure::MaxConfidence,
    ];

    /// Parse from the short name produced by [`CorrelationMeasure::name`].
    pub fn parse(s: &str) -> Option<Measure> {
        match s.to_ascii_lowercase().as_str() {
            "allconf" | "all_confidence" | "all-confidence" => Some(Measure::AllConfidence),
            "coherence" | "jaccard" => Some(Measure::Coherence),
            "cosine" => Some(Measure::Cosine),
            "kulc" | "kulczynski" => Some(Measure::Kulczynski),
            "maxconf" | "max_confidence" | "max-confidence" => Some(Measure::MaxConfidence),
            _ => None,
        }
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl CorrelationMeasure for Measure {
    fn name(&self) -> &'static str {
        match self {
            Measure::AllConfidence => "allconf",
            Measure::Coherence => "coherence",
            Measure::Cosine => "cosine",
            Measure::Kulczynski => "kulc",
            Measure::MaxConfidence => "maxconf",
        }
    }

    fn value(&self, sup_a: u64, item_sups: &[u64]) -> f64 {
        assert!(!item_sups.is_empty(), "an itemset has at least one item");
        debug_assert!(
            item_sups.iter().all(|&s| s >= sup_a),
            "item supports must dominate the itemset support (sup_a={sup_a}, items={item_sups:?})"
        );
        if sup_a == 0 {
            // All conditional probabilities are 0 (0/0 for never-seen items
            // is also taken as 0: an item with no occurrences supports no
            // correlation evidence).
            return 0.0;
        }
        let k = item_sups.len() as f64;
        let sup_a = sup_a as f64;
        match self {
            Measure::AllConfidence => {
                // min of sup(A)/sup(ai) = sup(A) / max(sup(ai))
                let max = item_sups.iter().copied().fold(0, u64::max) as f64;
                sup_a / max
            }
            Measure::MaxConfidence => {
                let min = item_sups.iter().copied().fold(u64::MAX, u64::min) as f64;
                sup_a / min
            }
            Measure::Kulczynski => item_sups.iter().map(|&s| sup_a / s as f64).sum::<f64>() / k,
            Measure::Cosine => {
                // Geometric mean, computed in log space for robustness with
                // large k and large supports.
                let log_sum: f64 = item_sups.iter().map(|&s| (sup_a / s as f64).ln()).sum();
                (log_sum / k).exp()
            }
            Measure::Coherence => {
                // Harmonic mean: k / Σ (sup(ai)/sup(A)).
                let inv_sum: f64 = item_sups.iter().map(|&s| s as f64 / sup_a).sum();
                k / inv_sum
            }
        }
    }

    fn is_anti_monotone(&self) -> bool {
        matches!(self, Measure::AllConfidence)
    }
}

/// Classic 2-item Coherence (Jaccard): `sup(AB) / (sup(A)+sup(B)−sup(AB))` —
/// support of the intersection over support of the union. The paper's
/// harmonic-mean Coherence is a monotone transform of this, preserving all
/// comparisons; we expose the classic form for reference and tests.
pub fn jaccard_pair(sup_ab: u64, sup_a: u64, sup_b: u64) -> f64 {
    let union = sup_a + sup_b - sup_ab;
    if union == 0 {
        0.0
    } else {
        sup_ab as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn pair_values_match_closed_forms() {
        // sup(A)=8, sup(a1)=10, sup(a2)=40.
        let (s, a, b) = (8u64, 10u64, 40u64);
        let p1 = 0.8;
        let p2 = 0.2;
        assert!((Measure::AllConfidence.pair(s, a, b) - p2).abs() < EPS);
        assert!((Measure::MaxConfidence.pair(s, a, b) - p1).abs() < EPS);
        assert!((Measure::Kulczynski.pair(s, a, b) - (p1 + p2) / 2.0).abs() < EPS);
        assert!((Measure::Cosine.pair(s, a, b) - (p1 * p2_f64(p2)).sqrt()).abs() < EPS);
        let harmonic = 2.0 / (1.0 / p1 + 1.0 / p2);
        assert!((Measure::Coherence.pair(s, a, b) - harmonic).abs() < EPS);
    }

    fn p2_f64(x: f64) -> f64 {
        x
    }

    #[test]
    fn kulc_matches_paper_table1() {
        // Table 1: sup(A)=sup(B)=1000, sup(AB)=400 → Kulc = 0.40,
        // independent of N (that is the whole point).
        let v = Measure::Kulczynski.pair(400, 1000, 1000);
        assert!((v - 0.40).abs() < EPS);
        // sup(C)=sup(D)=200, sup(CD)=4 → Kulc = 0.02.
        let v = Measure::Kulczynski.pair(4, 200, 200);
        assert!((v - 0.02).abs() < EPS);
    }

    #[test]
    fn zero_support_itemset_scores_zero() {
        for m in Measure::ALL {
            assert_eq!(m.value(0, &[5, 9]), 0.0, "{m:?}");
            assert_eq!(m.value(0, &[0, 0]), 0.0, "{m:?}");
        }
    }

    #[test]
    fn identical_items_score_one() {
        // sup(A) equal to every item support ⇒ every conditional
        // probability is 1 ⇒ every generalized mean is 1.
        for m in Measure::ALL {
            let v = m.value(7, &[7, 7, 7]);
            assert!((v - 1.0).abs() < EPS, "{m:?} gave {v}");
        }
    }

    #[test]
    fn singleton_itemset_scores_one() {
        for m in Measure::ALL {
            assert!((m.value(3, &[3]) - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn generalized_mean_ordering() {
        let cases: &[(u64, &[u64])] = &[
            (8, &[10, 40]),
            (5, &[5, 100]),
            (3, &[4, 5, 6]),
            (1, &[1, 1000, 5]),
            (100, &[100, 200, 400, 800]),
        ];
        for &(s, items) in cases {
            let all = Measure::AllConfidence.value(s, items);
            let coh = Measure::Coherence.value(s, items);
            let cos = Measure::Cosine.value(s, items);
            let kul = Measure::Kulczynski.value(s, items);
            let max = Measure::MaxConfidence.value(s, items);
            assert!(
                all <= coh + EPS && coh <= cos + EPS && cos <= kul + EPS && kul <= max + EPS,
                "ordering violated for ({s}, {items:?}): {all} {coh} {cos} {kul} {max}"
            );
        }
    }

    #[test]
    fn values_bounded_by_unit_interval() {
        for m in Measure::ALL {
            let v = m.value(3, &[3, 9, 27]);
            assert!((0.0..=1.0).contains(&v), "{m:?} gave {v}");
        }
    }

    #[test]
    fn anti_monotone_flags() {
        assert!(Measure::AllConfidence.is_anti_monotone());
        assert!(!Measure::Coherence.is_anti_monotone());
        assert!(!Measure::Cosine.is_anti_monotone());
        assert!(!Measure::Kulczynski.is_anti_monotone());
        assert!(!Measure::MaxConfidence.is_anti_monotone());
    }

    /// Counterexample showing the harmonic-mean Coherence of Table 2 is not
    /// anti-monotone, contrary to the blanket claim in the paper's proofs
    /// (which holds for classic Jaccard but not this re-definition).
    ///
    /// Database over items {0,1,2,3}: one transaction with all four items,
    /// two extra with item 0 alone, one extra each with items 1, 2, 3 alone.
    /// sup = [3,2,2,2], sup(full) = 1, sup({1,2,3}) = 1.
    #[test]
    fn coherence_harmonic_not_anti_monotone() {
        let sub = Measure::Coherence.value(1, &[3, 2, 2]); // {0,2,3}: 3/7
        let full = Measure::Coherence.value(1, &[3, 2, 2, 2]); // 4/9
        assert!(
            full > sub,
            "adding an item increased harmonic Coherence: {sub} -> {full}"
        );
        // Classic Jaccard IS anti-monotone on the same configuration: the
        // union grows 5 -> 6 while the intersection stays 1, so its value
        // drops from 1/5 to 1/6.
        assert!(jaccard_pair(1, 3, 3) > 0.0);
    }

    #[test]
    fn names_and_parse_roundtrip() {
        for m in Measure::ALL {
            assert_eq!(Measure::parse(m.name()), Some(m));
            assert_eq!(m.to_string(), m.name());
        }
        assert_eq!(Measure::parse("Kulczynski"), Some(Measure::Kulczynski));
        assert_eq!(Measure::parse("jaccard"), Some(Measure::Coherence));
        assert_eq!(Measure::parse("nope"), None);
    }

    #[test]
    fn default_is_kulc() {
        assert_eq!(Measure::default(), Measure::Kulczynski);
    }

    #[test]
    fn jaccard_pair_basics() {
        assert!((jaccard_pair(5, 10, 10) - 5.0 / 15.0).abs() < EPS);
        assert_eq!(jaccard_pair(0, 0, 0), 0.0);
        // Jaccard and harmonic-mean Coherence agree on pairs:
        // 2/(sup_a/s + sup_b/s) = 2s/(sup_a+sup_b); Jaccard = s/(sup_a+sup_b-s).
        // They are order-equivalent, not equal; check a known monotone pair.
        let j1 = jaccard_pair(5, 10, 10);
        let j2 = jaccard_pair(2, 10, 10);
        let c1 = Measure::Coherence.pair(5, 10, 10);
        let c2 = Measure::Coherence.pair(2, 10, 10);
        assert!((j1 > j2) == (c1 > c2));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_item_list_panics() {
        let _ = Measure::Kulczynski.value(1, &[]);
    }
}
