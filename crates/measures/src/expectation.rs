//! Expectation-based correlation measures (Lift, χ², φ, support deviation).
//!
//! These are **not** null-invariant: they depend on the total transaction
//! count `N`, and the paper's Table 1 / Example 2 demonstrates how that makes
//! them flip sign with `N` while the actual item relationship is unchanged.
//! We implement them solely to reproduce that demonstration and for users who
//! want to compare; the mining algorithm itself only accepts null-invariant
//! measures.

/// Sign of an expectation-based correlation judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExpectationSign {
    /// Observed support exceeds the independence expectation.
    Positive,
    /// Observed support falls short of the independence expectation.
    Negative,
    /// Observed support equals the expectation exactly.
    Independent,
}

/// Expected support of `{A, B}` under independence:
/// `E[sup(AB)] = sup(A)·sup(B)/N`.
pub fn expected_support(sup_a: u64, sup_b: u64, n: u64) -> f64 {
    assert!(n > 0, "database must contain at least one transaction");
    (sup_a as f64) * (sup_b as f64) / (n as f64)
}

/// Lift: `P(AB) / (P(A)·P(B)) = sup(AB)·N / (sup(A)·sup(B))`.
///
/// Lift > 1 reads as positive correlation, < 1 as negative — but the value
/// scales with `N` (see [`crate::expectation`] module docs).
pub fn lift(sup_ab: u64, sup_a: u64, sup_b: u64, n: u64) -> f64 {
    assert!(n > 0, "database must contain at least one transaction");
    if sup_a == 0 || sup_b == 0 {
        return 0.0;
    }
    (sup_ab as f64) * (n as f64) / ((sup_a as f64) * (sup_b as f64))
}

/// Classify the pair by comparing observed support to its expectation —
/// exactly the judgement criticized in Table 1 of the paper.
pub fn expectation_sign(sup_ab: u64, sup_a: u64, sup_b: u64, n: u64) -> ExpectationSign {
    let e = expected_support(sup_a, sup_b, n);
    let o = sup_ab as f64;
    if o > e {
        ExpectationSign::Positive
    } else if o < e {
        ExpectationSign::Negative
    } else {
        ExpectationSign::Independent
    }
}

/// Full 2×2 contingency table for a pair of items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contingency {
    /// Transactions containing both A and B.
    pub both: u64,
    /// Transactions containing A but not B.
    pub a_only: u64,
    /// Transactions containing B but not A.
    pub b_only: u64,
    /// Null transactions: neither A nor B.
    pub neither: u64,
}

impl Contingency {
    /// Build from supports: `sup(A)`, `sup(B)`, `sup(AB)` and total `N`.
    ///
    /// # Panics
    /// Panics if the supports are inconsistent (e.g. `sup(AB) > sup(A)` or
    /// the union exceeds `N`).
    pub fn from_supports(sup_ab: u64, sup_a: u64, sup_b: u64, n: u64) -> Self {
        assert!(
            sup_ab <= sup_a && sup_ab <= sup_b,
            "sup(AB) cannot exceed a member support"
        );
        let union = sup_a + sup_b - sup_ab;
        assert!(union <= n, "sup(A∪B)={union} exceeds N={n}");
        Contingency {
            both: sup_ab,
            a_only: sup_a - sup_ab,
            b_only: sup_b - sup_ab,
            neither: n - union,
        }
    }

    /// Total number of transactions.
    pub fn n(&self) -> u64 {
        self.both + self.a_only + self.b_only + self.neither
    }

    /// Pearson χ² statistic of the 2×2 table (1 degree of freedom).
    pub fn chi_squared(&self) -> f64 {
        let n = self.n() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let row_a = (self.both + self.a_only) as f64;
        let row_na = (self.b_only + self.neither) as f64;
        let col_b = (self.both + self.b_only) as f64;
        let col_nb = (self.a_only + self.neither) as f64;
        let cells = [
            (self.both as f64, row_a * col_b / n),
            (self.a_only as f64, row_a * col_nb / n),
            (self.b_only as f64, row_na * col_b / n),
            (self.neither as f64, row_na * col_nb / n),
        ];
        cells
            .iter()
            .map(|&(o, e)| if e == 0.0 { 0.0 } else { (o - e).powi(2) / e })
            .sum()
    }

    /// φ coefficient (signed, in `[-1, 1]`): the Pearson correlation of the
    /// two indicator variables.
    pub fn phi(&self) -> f64 {
        let (a, b, c, d) = (
            self.both as f64,
            self.a_only as f64,
            self.b_only as f64,
            self.neither as f64,
        );
        let denom = ((a + b) * (c + d) * (a + c) * (b + d)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (a * d - b * c) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces Table 1 of the paper: the expectation-based judgement flips
    /// between DB1 (N=20,000) and DB2 (N=2,000) for identical supports, while
    /// Kulc (tested in `null_invariant`) is 0.40 / 0.02 in both.
    #[test]
    fn table1_expectation_flips_with_n() {
        // Itemset {A, B}: sup 1000/1000, sup(AB)=400.
        assert_eq!(expected_support(1000, 1000, 20_000), 50.0);
        assert_eq!(
            expectation_sign(400, 1000, 1000, 20_000),
            ExpectationSign::Positive
        );
        assert_eq!(expected_support(1000, 1000, 2_000), 500.0);
        assert_eq!(
            expectation_sign(400, 1000, 1000, 2_000),
            ExpectationSign::Negative
        );
        // Itemset {C, D}: sup 200/200, sup(CD)=4 — "intuitively clearly
        // negative", judged positive in DB1.
        assert_eq!(expected_support(200, 200, 20_000), 2.0);
        assert_eq!(
            expectation_sign(4, 200, 200, 20_000),
            ExpectationSign::Positive
        );
        assert_eq!(expected_support(200, 200, 2_000), 20.0);
        assert_eq!(
            expectation_sign(4, 200, 200, 2_000),
            ExpectationSign::Negative
        );
    }

    #[test]
    fn lift_scales_with_n() {
        let l1 = lift(400, 1000, 1000, 20_000);
        let l2 = lift(400, 1000, 1000, 2_000);
        assert!(l1 > 1.0 && l2 < 1.0);
        assert!((l1 / l2 - 10.0).abs() < 1e-9, "lift is proportional to N");
    }

    #[test]
    fn lift_zero_supports() {
        assert_eq!(lift(0, 0, 10, 100), 0.0);
        assert_eq!(lift(0, 10, 10, 100), 0.0);
    }

    #[test]
    fn independent_sign() {
        // sup(A)=sup(B)=10, N=100 → E=1; observed 1 → independent.
        assert_eq!(
            expectation_sign(1, 10, 10, 100),
            ExpectationSign::Independent
        );
    }

    #[test]
    fn contingency_construction() {
        let c = Contingency::from_supports(4, 10, 8, 100);
        assert_eq!(c.both, 4);
        assert_eq!(c.a_only, 6);
        assert_eq!(c.b_only, 4);
        assert_eq!(c.neither, 86);
        assert_eq!(c.n(), 100);
    }

    #[test]
    #[should_panic(expected = "exceeds N")]
    fn contingency_rejects_inconsistent_totals() {
        let _ = Contingency::from_supports(0, 8, 8, 10);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn contingency_rejects_oversized_intersection() {
        let _ = Contingency::from_supports(9, 8, 10, 100);
    }

    #[test]
    fn chi_squared_zero_for_independence() {
        // Perfect independence: P(A)=0.5, P(B)=0.5, P(AB)=0.25 with N=100.
        let c = Contingency::from_supports(25, 50, 50, 100);
        assert!(c.chi_squared().abs() < 1e-9);
        assert!(c.phi().abs() < 1e-9);
    }

    #[test]
    fn chi_squared_positive_for_association() {
        let c = Contingency::from_supports(50, 50, 50, 100);
        // Perfect association: χ² = N, φ = 1.
        assert!((c.chi_squared() - 100.0).abs() < 1e-9);
        assert!((c.phi() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phi_negative_for_disjoint_items() {
        let c = Contingency::from_supports(0, 50, 50, 100);
        assert!((c.phi() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn phi_sensitive_to_null_transactions() {
        // The same co-occurrence counts with more null transactions changes
        // φ — the very defect null-invariant measures avoid.
        let c1 = Contingency::from_supports(10, 20, 20, 100);
        let c2 = Contingency::from_supports(10, 20, 20, 10_000);
        assert!((c1.phi() - c2.phi()).abs() > 0.05);
    }
}
