//! Correlation labels and thresholds (Definition 1 of the paper).

use std::fmt;

/// The label an itemset receives once its support and correlation are known.
///
/// Per Definition 1: an itemset is **positive** if it is frequent and
/// `Corr ≥ γ`, **negative** if frequent and `Corr ≤ ε`, **non-correlated**
/// if frequent but strictly between the thresholds, and **infrequent**
/// otherwise (infrequent itemsets carry no correlation label at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Label {
    /// Frequent and `Corr ≥ γ`.
    Positive,
    /// Frequent and `Corr ≤ ε`.
    Negative,
    /// Frequent but neither positive nor negative — "not interesting".
    NonCorrelated,
    /// Support below the level's minimum support threshold.
    Infrequent,
}

impl Label {
    /// Whether this label is exactly [`Label::Positive`].
    #[inline]
    pub fn is_positive(self) -> bool {
        self == Label::Positive
    }

    /// Whether this label is exactly [`Label::Negative`].
    #[inline]
    pub fn is_negative(self) -> bool {
        self == Label::Negative
    }

    /// Whether this label can sit inside a flipping chain (positive or
    /// negative — non-correlated and infrequent itemsets break chains).
    #[inline]
    pub fn is_correlated(self) -> bool {
        matches!(self, Label::Positive | Label::Negative)
    }

    /// Whether `self` followed by `next` constitutes a *flip*
    /// (positive → negative or negative → positive).
    #[inline]
    pub fn flips_to(self, next: Label) -> bool {
        matches!(
            (self, next),
            (Label::Positive, Label::Negative) | (Label::Negative, Label::Positive)
        )
    }

    /// Sign char used in compact renderings: `+`, `-`, `.` or `!`.
    pub fn sigil(self) -> char {
        match self {
            Label::Positive => '+',
            Label::Negative => '-',
            Label::NonCorrelated => '.',
            Label::Infrequent => '!',
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Label::Positive => "positive",
            Label::Negative => "negative",
            Label::NonCorrelated => "non-correlated",
            Label::Infrequent => "infrequent",
        };
        f.write_str(s)
    }
}

/// The `(γ, ε)` correlation threshold pair.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Thresholds {
    /// Positive threshold γ: `Corr ≥ γ` ⇒ positive.
    pub gamma: f64,
    /// Negative threshold ε: `Corr ≤ ε` ⇒ negative.
    pub epsilon: f64,
}

impl Thresholds {
    /// Create a threshold pair, checking `0 ≤ ε < γ ≤ 1`.
    ///
    /// # Panics
    /// Panics if the ordering constraint is violated — threshold mistakes
    /// silently produce empty or nonsensical pattern sets, so we fail fast.
    pub fn new(gamma: f64, epsilon: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gamma) && (0.0..=1.0).contains(&epsilon) && epsilon < gamma,
            "thresholds must satisfy 0 <= epsilon < gamma <= 1 (got gamma={gamma}, epsilon={epsilon})"
        );
        Thresholds { gamma, epsilon }
    }

    /// Label a *frequent* itemset from its correlation value.
    #[inline]
    pub fn label_frequent(&self, corr: f64) -> Label {
        if corr >= self.gamma {
            Label::Positive
        } else if corr <= self.epsilon {
            Label::Negative
        } else {
            Label::NonCorrelated
        }
    }

    /// Label an itemset from its correlation value and frequency status.
    #[inline]
    pub fn label(&self, corr: f64, frequent: bool) -> Label {
        if frequent {
            self.label_frequent(corr)
        } else {
            Label::Infrequent
        }
    }
}

impl Default for Thresholds {
    /// The paper's default synthetic-experiment thresholds: γ=0.3, ε=0.1.
    fn default() -> Self {
        Thresholds::new(0.3, 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeling_boundaries_are_inclusive() {
        let t = Thresholds::new(0.6, 0.35);
        assert_eq!(t.label_frequent(0.6), Label::Positive);
        assert_eq!(t.label_frequent(0.61), Label::Positive);
        assert_eq!(t.label_frequent(0.35), Label::Negative);
        assert_eq!(t.label_frequent(0.34), Label::Negative);
        assert_eq!(t.label_frequent(0.5), Label::NonCorrelated);
        assert_eq!(t.label(0.9, false), Label::Infrequent);
    }

    #[test]
    #[should_panic(expected = "thresholds must satisfy")]
    fn inverted_thresholds_panic() {
        let _ = Thresholds::new(0.1, 0.3);
    }

    #[test]
    #[should_panic(expected = "thresholds must satisfy")]
    fn out_of_range_threshold_panics() {
        let _ = Thresholds::new(1.5, 0.1);
    }

    #[test]
    fn flips() {
        use Label::*;
        assert!(Positive.flips_to(Negative));
        assert!(Negative.flips_to(Positive));
        assert!(!Positive.flips_to(Positive));
        assert!(!Positive.flips_to(NonCorrelated));
        assert!(!NonCorrelated.flips_to(Negative));
        assert!(!Infrequent.flips_to(Positive));
    }

    #[test]
    fn predicates_and_sigils() {
        use Label::*;
        assert!(Positive.is_positive() && !Positive.is_negative());
        assert!(Negative.is_negative());
        assert!(Positive.is_correlated() && Negative.is_correlated());
        assert!(!NonCorrelated.is_correlated() && !Infrequent.is_correlated());
        assert_eq!(Positive.sigil(), '+');
        assert_eq!(Negative.sigil(), '-');
        assert_eq!(NonCorrelated.sigil(), '.');
        assert_eq!(Infrequent.sigil(), '!');
    }

    #[test]
    fn display_names() {
        assert_eq!(Label::Positive.to_string(), "positive");
        assert_eq!(Label::Infrequent.to_string(), "infrequent");
    }

    #[test]
    fn default_matches_paper() {
        let t = Thresholds::default();
        assert_eq!(t.gamma, 0.3);
        assert_eq!(t.epsilon, 0.1);
    }
}
