//! Literature-mining scenario: the MEDLINE surrogate (paper §5.2, Fig. 12),
//! mined through the `flipper-api` session façade.
//!
//! Citations are transactions over MeSH-style topics. Flipping patterns
//! suggest under-explored topic combinations: substance-related disorders
//! and temperance are often studied together, yet the specific pair
//! (withdrawal syndrome, alcohol abstinence) is underrepresented — a
//! candidate research gap.
//!
//! Run with: `cargo run --example medline` (add `--release` for full scale)

use flipper_api::{FlipperConfig, FlipperError, MinSupports, Session, Thresholds};
use flipper_datagen::surrogate::medline;

fn main() -> Result<(), FlipperError> {
    // Scale 0.1 ≈ 64K citations (the paper's working set is 640K; pass
    // scale 1.0 for the full size — the planted chains are scale-free).
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.1);
    let data = medline(scale, 42);
    println!(
        "MEDLINE surrogate: {} citations (scale {scale}), {} topics, height {}",
        data.db.len(),
        data.taxonomy.leaf_count(),
        data.taxonomy.height()
    );

    let session = Session::open(&data)?;
    let cfg = FlipperConfig::new(
        Thresholds::new(data.thresholds.0, data.thresholds.1),
        MinSupports::Fractions(data.min_support.clone()),
    );
    let result = session.mine(&cfg)?;

    println!("\nflipping patterns: {}", result.patterns.len());
    for p in &result.patterns {
        println!("{}\n", p.display(session.taxonomy()));
    }

    for (a, b) in data.expected_flip_ids() {
        let found = result
            .patterns
            .iter()
            .any(|p| p.leaf_itemset.items() == [a, b]);
        println!(
            "paper pattern ({}, {}): {}",
            data.taxonomy.name(a),
            data.taxonomy.name(b),
            if found { "FOUND" } else { "missing!" }
        );
        assert!(found);
    }
    println!("\nstats: {}", result.stats.summary());
    Ok(())
}
