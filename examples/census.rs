//! Demographics scenario: the CENSUS surrogate (paper §5.2, Fig. 11),
//! mined through the `flipper-api` session façade.
//!
//! 32,000 person records become transactions over attribute items with a
//! 2-level hierarchy (attribute group → attribute ∧ qualifier subgroup).
//! Flipping patterns expose sub-populations that contradict their group's
//! trend: craft-repair workers correlate negatively with income ≥ 50K —
//! unless they hold a bachelor's degree.
//!
//! Run with: `cargo run --example census`

use flipper_api::{FlipperConfig, FlipperError, MinSupports, PruningConfig, Session, Thresholds};
use flipper_datagen::surrogate::census;

fn main() -> Result<(), FlipperError> {
    let data = census(42);
    println!(
        "CENSUS surrogate: {} records, {} attribute items, height {}",
        data.db.len(),
        data.taxonomy.leaf_count(),
        data.taxonomy.height()
    );
    // `income>=50K` has no refinement of its own; the taxonomy was balanced
    // with leaf-copy padding (Fig. 3 [B]) — show it.
    let padded = data
        .taxonomy
        .node_by_name("income>=50K#1")
        .expect("padded leaf");
    println!(
        "note: {:?} is a synthetic copy of {:?} (Fig. 3 [B] rebalancing)",
        data.taxonomy.name(padded),
        "income>=50K",
    );

    let session = Session::open(&data)?;
    let cfg = FlipperConfig::new(
        Thresholds::new(data.thresholds.0, data.thresholds.1),
        MinSupports::Fractions(data.min_support.clone()),
    )
    .with_pruning(PruningConfig::FULL);
    let result = session.mine(&cfg)?;

    println!("\nflipping patterns: {}", result.patterns.len());
    for p in &result.patterns {
        println!("{}\n", p.display(session.taxonomy()));
    }

    for (a, b) in data.expected_flip_ids() {
        let found = result
            .patterns
            .iter()
            .any(|p| p.leaf_itemset.items() == [a, b]);
        println!(
            "paper pattern ({}, {}): {}",
            data.taxonomy.name(a),
            data.taxonomy.name(b),
            if found { "FOUND" } else { "missing!" }
        );
        assert!(found);
    }
    println!("\nstats: {}", result.stats.summary());
    Ok(())
}
