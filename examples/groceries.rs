//! Market-basket scenario: the GROCERIES surrogate (paper §5.2, Fig. 10),
//! mined through the `flipper-api` session façade.
//!
//! Generates ~9,800 point-of-sale baskets over a 3-level store taxonomy,
//! mines with the Table-4 thresholds (γ = 0.15, ε = 0.10) and prints the
//! discovered flips — including the paper's famous beer × baby-cosmetics
//! pattern and the actionable pork × salad-dressing store-layout hint.
//!
//! Run with: `cargo run --example groceries`

use flipper_api::{FlipperConfig, FlipperError, MinSupports, Session, Thresholds};
use flipper_datagen::surrogate::groceries;
use flipper_taxonomy::dot::{to_dot, DotOptions};

fn main() -> Result<(), FlipperError> {
    let data = groceries(42);
    println!(
        "GROCERIES surrogate: {} baskets, {} products, taxonomy height {}",
        data.db.len(),
        data.taxonomy.leaf_count(),
        data.taxonomy.height()
    );

    let session = Session::open(&data)?;
    let cfg = FlipperConfig::new(
        Thresholds::new(data.thresholds.0, data.thresholds.1),
        MinSupports::Fractions(data.min_support.clone()),
    );
    let result = session.mine(&cfg)?;

    println!("\nflipping patterns: {}", result.patterns.len());
    println!("top 5 by flip gap:");
    for p in result.top_k_by_gap(5) {
        println!("{}\n", p.display(session.taxonomy()));
    }

    // The planted paper patterns must be among the results.
    for (a, b) in data.expected_flip_ids() {
        let found = result
            .patterns
            .iter()
            .any(|p| p.leaf_itemset.items() == [a, b]);
        println!(
            "paper pattern ({}, {}): {}",
            data.taxonomy.name(a),
            data.taxonomy.name(b),
            if found { "FOUND" } else { "missing!" }
        );
        assert!(found);
    }

    // Render the hierarchy fragment behind the first expected flip, like
    // the paper's Fig. 10 diagrams.
    let (a, b) = data.expected_flip_ids()[0];
    let highlight: Vec<_> = data
        .taxonomy
        .path_to_root(a)
        .into_iter()
        .chain(data.taxonomy.path_to_root(b))
        .collect();
    let dot = to_dot(
        &data.taxonomy,
        &DotOptions {
            graph_name: "groceries_flip".into(),
            highlight,
            max_level: Some(3),
            ..Default::default()
        },
    );
    println!("\nGraphviz DOT of the taxonomy (render with `dot -Tpng`):");
    println!("{}", &dot[..dot.len().min(400)]);
    println!("... ({} bytes total)", dot.len());

    println!("stats: {}", result.stats.summary());
    Ok(())
}
