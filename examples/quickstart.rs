//! Quickstart: mine the paper's toy example (Fig. 4/5) through the
//! `flipper-api` session façade.
//!
//! Builds the 10-transaction database and 3-level taxonomy from Figure 4 of
//! the paper, opens a [`Session`] on it (in-memory sources ingest like any
//! other), and mines with γ = 0.6, ε = 0.35 — recovering the single
//! flipping pattern `{a11, b11}` highlighted in Figure 5. The result flows
//! through a [`TextReport`] sink, exactly as `flipper mine` prints it.
//!
//! Run with: `cargo run --example quickstart`

use flipper_api::{
    Dataset, FlipperConfig, FlipperError, MinSupports, PruningConfig, ResultSink, Session,
    TextReport, Thresholds,
};
use flipper_data::TransactionDb;
use flipper_taxonomy::{RebalancePolicy, Taxonomy};

fn main() -> Result<(), FlipperError> {
    // The taxonomy of Fig. 4: two categories (a, b), two sub-categories
    // each, two leaves per sub-category.
    let tax = Taxonomy::from_edges(
        [
            ("a", ""),
            ("b", ""),
            ("a1", "a"),
            ("a2", "a"),
            ("b1", "b"),
            ("b2", "b"),
            ("a11", "a1"),
            ("a12", "a1"),
            ("a21", "a2"),
            ("a22", "a2"),
            ("b11", "b1"),
            ("b12", "b1"),
            ("b21", "b2"),
            ("b22", "b2"),
        ],
        RebalancePolicy::RequireBalanced,
    )?;

    // The 10 transactions D1..D10 of Fig. 4.
    let g = |s: &str| tax.node_by_name(s).expect("item exists");
    let db = TransactionDb::new(vec![
        vec![g("a11"), g("a22"), g("b11"), g("b22")],
        vec![g("a11"), g("a21"), g("b11")],
        vec![g("a12"), g("a21")],
        vec![g("a12"), g("a22"), g("b21")],
        vec![g("a12"), g("a22"), g("b21")],
        vec![g("a12"), g("a21"), g("b22")],
        vec![g("a21"), g("b12")],
        vec![g("b12"), g("b21"), g("b22")],
        vec![g("b12"), g("b21")],
        vec![g("a22"), g("b12"), g("b22")],
    ])?;

    // Ingest once; the session caches the multi-level projection.
    let session = Session::open(Dataset { taxonomy: tax, db })?;

    // Example 3 of the paper: γ = 0.6, ε = 0.35, minimum support 1 count.
    let cfg = FlipperConfig::new(Thresholds::new(0.6, 0.35), MinSupports::Counts(vec![1]))
        .with_pruning(PruningConfig::FULL);
    let result = session.mine(&cfg)?;

    let mut report = TextReport::new(std::io::stdout().lock());
    report.consume("quickstart", session.taxonomy(), &cfg, &result)?;
    report.finish()?;

    assert_eq!(
        result.patterns.len(),
        1,
        "the toy example has exactly one flipping pattern"
    );
    assert_eq!(
        result.patterns[0]
            .leaf_itemset
            .display(session.taxonomy())
            .to_string(),
        "{a11, b11}"
    );
    Ok(())
}
