//! Quickstart: mine the paper's toy example (Fig. 4/5).
//!
//! Builds the 10-transaction database and 3-level taxonomy from Figure 4 of
//! the paper and mines it with γ = 0.6, ε = 0.35 — recovering the single
//! flipping pattern `{a11, b11}` highlighted in Figure 5.
//!
//! Run with: `cargo run --example quickstart`

use flipper_core::{mine, FlipperConfig, MinSupports, PruningConfig};
use flipper_data::TransactionDb;
use flipper_measures::Thresholds;
use flipper_taxonomy::{RebalancePolicy, Taxonomy};

fn main() {
    // The taxonomy of Fig. 4: two categories (a, b), two sub-categories
    // each, two leaves per sub-category.
    let tax = Taxonomy::from_edges(
        [
            ("a", ""),
            ("b", ""),
            ("a1", "a"),
            ("a2", "a"),
            ("b1", "b"),
            ("b2", "b"),
            ("a11", "a1"),
            ("a12", "a1"),
            ("a21", "a2"),
            ("a22", "a2"),
            ("b11", "b1"),
            ("b12", "b1"),
            ("b21", "b2"),
            ("b22", "b2"),
        ],
        RebalancePolicy::RequireBalanced,
    )
    .expect("taxonomy is well-formed");

    // The 10 transactions D1..D10 of Fig. 4.
    let g = |s: &str| tax.node_by_name(s).expect("item exists");
    let db = TransactionDb::new(vec![
        vec![g("a11"), g("a22"), g("b11"), g("b22")],
        vec![g("a11"), g("a21"), g("b11")],
        vec![g("a12"), g("a21")],
        vec![g("a12"), g("a22"), g("b21")],
        vec![g("a12"), g("a22"), g("b21")],
        vec![g("a12"), g("a21"), g("b22")],
        vec![g("a21"), g("b12")],
        vec![g("b12"), g("b21"), g("b22")],
        vec![g("b12"), g("b21")],
        vec![g("a22"), g("b12"), g("b22")],
    ])
    .expect("transactions are non-empty");

    // Example 3 of the paper: γ = 0.6, ε = 0.35, minimum support 1 count.
    let cfg = FlipperConfig::new(Thresholds::new(0.6, 0.35), MinSupports::Counts(vec![1]))
        .with_pruning(PruningConfig::FULL);

    let result = mine(&tax, &db, &cfg);

    println!("flipping patterns found: {}", result.patterns.len());
    for p in &result.patterns {
        println!(
            "pattern {} (flip gap {:.3}):",
            p.leaf_itemset.display(&tax),
            p.flip_gap()
        );
        println!("{}", p.display(&tax));
    }
    println!("\nrun stats: {}", result.stats.summary());

    assert_eq!(
        result.patterns.len(),
        1,
        "the toy example has exactly one flipping pattern"
    );
    assert_eq!(
        result.patterns[0].leaf_itemset.display(&tax).to_string(),
        "{a11, b11}"
    );
}
