//! Threshold tuning walkthrough (paper §5.1 guidance and §7 future work).
//!
//! The paper advises: pick γ first, then start ε just below γ and lower it
//! until a satisfactory number of flipping patterns emerges; per-level
//! minimum supports should decrease with depth. This example walks that
//! procedure on the GROCERIES surrogate and also demonstrates the top-K
//! "most flipping" ranking proposed in the paper's conclusions.
//!
//! Run with: `cargo run --example threshold_tuning`

use flipper_core::{mine_with_view, FlipperConfig, MinSupports};
use flipper_data::MultiLevelView;
use flipper_datagen::surrogate::groceries;
use flipper_measures::Thresholds;

fn main() {
    let data = groceries(42);
    let view = MultiLevelView::build(&data.db, &data.taxonomy);

    let gamma = 0.15;
    println!("γ fixed at {gamma}; lowering ε (paper's tuning recipe):");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "ε", "flips", "candidates", "time(ms)"
    );
    for eps_pct in [14, 12, 10, 8, 6, 4, 2] {
        let eps = eps_pct as f64 / 100.0;
        let cfg = FlipperConfig::new(
            Thresholds::new(gamma, eps),
            MinSupports::Fractions(data.min_support.clone()),
        );
        let result = mine_with_view(&data.taxonomy, &view, &cfg);
        println!(
            "{:>8.2} {:>10} {:>12} {:>12.1}",
            eps,
            result.patterns.len(),
            result.stats.candidates_generated,
            result.stats.elapsed.as_secs_f64() * 1e3,
        );
    }

    // Per-level support guidance: decreasing thresholds matter because item
    // supports shrink with depth.
    println!("\nper-level item-support profile (mean relative support):");
    for ls in flipper_data::stats::level_stats(&data.db, &data.taxonomy) {
        println!(
            "  level {}: {} nodes, mean support {:.4}, max {:.4}",
            ls.level, ls.distinct_nodes, ls.mean_rel_support, ls.max_rel_support
        );
    }

    // Top-K most-flipping ranking (the paper's §7 proposal) at the final ε.
    let cfg = FlipperConfig::new(
        Thresholds::new(gamma, 0.10),
        MinSupports::Fractions(data.min_support.clone()),
    );
    let result = mine_with_view(&data.taxonomy, &view, &cfg);
    println!("\ntop-3 patterns by flip gap at (γ, ε) = (0.15, 0.10):");
    for p in result.top_k_by_gap(3) {
        println!("gap {:.3}:\n{}\n", p.flip_gap(), p.display(&data.taxonomy));
    }
}
