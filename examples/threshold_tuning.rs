//! Threshold tuning walkthrough (paper §5.1 guidance and §7 future work),
//! as a real parameter [`Sweep`] over one cached ingestion.
//!
//! The paper advises: pick γ first, then start ε just below γ and lower it
//! until a satisfactory number of flipping patterns emerges; per-level
//! minimum supports should decrease with depth. Before the façade this was
//! a hand-rolled loop; now it is a γ × ε thresholds grid the session runs
//! against its one cached view — each point bit-identical to a single-shot
//! `mine` call. The top-K "most flipping" ranking flows through the
//! accumulating [`TopK`] sink.
//!
//! Run with: `cargo run --example threshold_tuning`

use flipper_api::{emit_runs, FlipperConfig, FlipperError, MinSupports, Session, Thresholds, TopK};
use flipper_datagen::surrogate::groceries;

fn main() -> Result<(), FlipperError> {
    let data = groceries(42);
    // Ingest once; every sweep point below reuses this projection.
    let session = Session::open(&data)?;

    let gamma = 0.15;
    let base = FlipperConfig {
        thresholds: Thresholds::new(gamma, 0.10),
        min_support: MinSupports::Fractions(data.min_support.clone()),
        ..Default::default()
    };

    println!("γ fixed at {gamma}; lowering ε (paper's tuning recipe):");
    let epsilons: Vec<f64> = [14, 12, 10, 8, 6, 4, 2]
        .iter()
        .map(|&pct| pct as f64 / 100.0)
        .collect();
    let runs = session
        .sweep()
        .thresholds_grid(&base, &[gamma], &epsilons)
        .run()?;

    println!(
        "{:>12} {:>10} {:>12} {:>12}",
        "point", "flips", "candidates", "time(ms)"
    );
    for run in &runs {
        println!(
            "{:>12} {:>10} {:>12} {:>12.1}",
            run.label,
            run.result.patterns.len(),
            run.result.stats.candidates_generated,
            run.result.stats.elapsed.as_secs_f64() * 1e3,
        );
    }

    // Per-level support guidance: decreasing thresholds matter because item
    // supports shrink with depth.
    println!("\nper-level item-support profile (mean relative support):");
    for ls in flipper_api::stats::level_stats(&data.db, &data.taxonomy) {
        println!(
            "  level {}: {} nodes, mean support {:.4}, max {:.4}",
            ls.level, ls.distinct_nodes, ls.mean_rel_support, ls.max_rel_support
        );
    }

    // Top-K most-flipping ranking (the paper's §7 proposal) across the
    // whole sweep, via the accumulating sink.
    let mut leaderboard = TopK::new(3);
    emit_runs(&mut leaderboard, session.taxonomy(), &runs)?;
    println!("\ntop-3 patterns by flip gap across the sweep:");
    print!("{}", leaderboard.render(session.taxonomy()));

    assert_eq!(runs.len(), epsilons.len(), "one run per ε");
    assert!(!leaderboard.entries().is_empty());
    Ok(())
}
