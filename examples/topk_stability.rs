//! Threshold-free mining workflow: top-K most-flipping search (the paper's
//! §7 proposal) followed by bootstrap stability screening, on the CENSUS
//! surrogate — both through one `flipper-api` [`Session`]. The combination
//! answers the two questions the paper leaves to the data expert — *which
//! thresholds?* and *can I trust this pattern?* — without manual tuning,
//! and without re-ingesting the dataset between the two analyses.
//!
//! Run with: `cargo run --example topk_stability`

use flipper_api::{FlipperConfig, FlipperError, MinSupports, Session, TopKConfig};
use flipper_datagen::surrogate::census;

fn main() -> Result<(), FlipperError> {
    let data = census(42);
    println!("CENSUS surrogate: {} records", data.db.len());

    // One ingestion serves both analyses below.
    let session = Session::open(&data)?;

    // 1. Top-K search: no (γ, ε) supplied — the search relaxes thresholds
    //    along the paper's tuning recipe until k patterns emerge, reusing
    //    the session's cached view for every probe run.
    let base = FlipperConfig {
        min_support: MinSupports::Fractions(data.min_support.clone()),
        ..Default::default()
    };
    let topk = session.top_k(&TopKConfig {
        k: 5,
        base: base.clone(),
        ..Default::default()
    })?;
    println!(
        "\ntop-{} patterns at auto-selected (γ, ε) = ({:.3}, {:.3}) after {} runs:",
        topk.patterns.len(),
        topk.thresholds.gamma,
        topk.thresholds.epsilon,
        topk.runs
    );
    for p in &topk.patterns {
        println!(
            "gap {:.3}:\n{}\n",
            p.flip_gap(),
            p.display(session.taxonomy())
        );
    }

    // 2. Stability screening: resample the records 20 times and keep only
    //    patterns that reappear in at least 80% of the replicates. The
    //    session holds the materialized database (in-memory source), so
    //    resampling is available.
    let mut cfg = base;
    cfg.thresholds = topk.thresholds;
    let report = session.stability(&cfg, 20, 7)?;
    println!("bootstrap stability over {} rounds:", report.rounds);
    for s in &report.patterns {
        println!(
            "  {:.2}  {}{}",
            s.stability,
            s.leaf_itemset.display(session.taxonomy()),
            if s.in_original {
                ""
            } else {
                "  (replicates only)"
            },
        );
    }
    let robust: Vec<_> = report.stable_at(0.8).collect();
    println!(
        "\n{} of {} patterns are ≥80% stable",
        robust.len(),
        report.patterns.len()
    );

    // The paper's craft-repair/bachelor pattern should be among the robust.
    let (a, b) = data.expected_flip_ids()[0];
    let pair = [a, b];
    assert!(
        report
            .stable_at(0.8)
            .any(|s| s.leaf_itemset.items() == pair),
        "the planted census pattern must be stable"
    );
    println!("planted census pattern confirmed stable.");
    Ok(())
}
